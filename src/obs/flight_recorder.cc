#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/mem.h"
#include "obs/counters.h"

#if !defined(_WIN32)
#include <signal.h>
#include <unistd.h>
#endif

namespace rq {
namespace obs {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Summaries lost to the ring: evicted oldest entries plus the (pathological,
// lapped-writer) case where a new summary loses the slot's seqlock tag.
Counter& FlightDroppedCounter() {
  static Counter* counter = GetCounter("obs.flight_dropped");
  return *counter;
}

uint64_t PackKindVerdict(QueryKind kind, int32_t verdict) {
  return (static_cast<uint64_t>(static_cast<uint8_t>(kind)) << 32) |
         static_cast<uint32_t>(verdict);
}

void UnpackKindVerdict(uint64_t packed, QueryKind* kind, int32_t* verdict) {
  *kind = static_cast<QueryKind>(static_cast<uint8_t>(packed >> 32));
  *verdict = static_cast<int32_t>(static_cast<uint32_t>(packed));
}

// Async-signal-safe decimal formatting into `buf`; returns chars written.
size_t FormatU64(uint64_t value, char* buf) {
  char tmp[20];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  for (size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

// Bounded async-signal-safe line builder over a caller-owned buffer.
class LineBuf {
 public:
  LineBuf(char* buf, size_t cap) : buf_(buf), cap_(cap) {}
  void Append(const char* text) {
    size_t n = std::strlen(text);
    if (len_ + n > cap_) n = cap_ - len_;
    std::memcpy(buf_ + len_, text, n);
    len_ += n;
  }
  void AppendU64(uint64_t value) {
    if (len_ + 20 > cap_) return;
    len_ += FormatU64(value, buf_ + len_);
  }
  size_t len() const { return len_; }

 private:
  char* buf_;
  size_t cap_;
  size_t len_ = 0;
};

void WriteAll(int fd, const char* data, size_t len) {
#if !defined(_WIN32)
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
#else
  (void)fd;
  (void)data;
  (void)len;
#endif
}

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kUnknown:
      return "unknown";
    case QueryKind::kPathContainment:
      return "path-containment";
    case QueryKind::kUc2RpqContainment:
      return "uc2rpq-containment";
    case QueryKind::kRqContainment:
      return "rq-containment";
    case QueryKind::kDatalogContainment:
      return "datalog-containment";
    case QueryKind::kGraphEval:
      return "graph-eval";
    case QueryKind::kUc2RpqEval:
      return "uc2rpq-eval";
    case QueryKind::kRqEval:
      return "rq-eval";
    case QueryKind::kDatalogEval:
      return "datalog-eval";
  }
  return "?";
}

const char* FlightVerdictName(int32_t verdict) {
  switch (verdict) {
    case kFlightVerdictOk:
      return "ok";
    case kFlightVerdictRefuted:
      return "refuted";
    case kFlightVerdictUnknown:
      return "unknown";
    case kFlightVerdictError:
      return "error";
    case kFlightVerdictTimeout:
      return "timeout";
    case kFlightVerdictAbandoned:
      return "abandoned";
  }
  return "?";
}

FlightRecorder::FlightRecorder() : epoch_ns_(SteadyNowNs()) {
  uint64_t threshold = 100 * 1000 * 1000;  // 100 ms
  if (const char* env = std::getenv("RQ_SLOW_QUERY_MS")) {
    char* end = nullptr;
    double ms = std::strtod(env, &end);
    if (end != env && ms >= 0) {
      threshold = static_cast<uint64_t>(ms * 1e6);
    }
  }
  slow_threshold_ns_.store(threshold, std::memory_order_relaxed);
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

void FlightRecorder::Record(QueryKind kind, int32_t verdict,
                            uint64_t duration_ns, uint64_t work,
                            uint64_t mem_peak) {
  uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & (kCapacity - 1)];
  uint64_t now = SteadyNowNs();
  uint64_t elapsed = now - epoch_ns_;
  uint64_t start_ns = elapsed > duration_ns ? elapsed - duration_ns : 0;

  // Claim the slot's seqlock tag: even (or 0) -> odd-for-this-seq. A failed
  // claim means a writer lagging a full ring lap still owns the slot; the
  // new summary is dropped rather than spun on, keeping Record wait-free.
  uint64_t cur = slot.tag.load(std::memory_order_relaxed);
  uint64_t odd = (seq + 1) * 2 + 1;
  if ((cur & 1) != 0 ||
      !slot.tag.compare_exchange_strong(cur, odd,
                                        std::memory_order_relaxed)) {
    FlightDroppedCounter().Increment();
  } else {
    if (cur != 0) FlightDroppedCounter().Increment();  // evicted oldest
    // The release fence orders the odd tag before the field stores; the
    // closing release store orders the fields before the even tag. Readers
    // pair with acquire loads/fences (Snapshot, DumpToFd).
    std::atomic_thread_fence(std::memory_order_release);
    slot.kind_verdict.store(PackKindVerdict(kind, verdict),
                            std::memory_order_relaxed);
    slot.start_ns.store(start_ns, std::memory_order_relaxed);
    slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
    slot.work.store(work, std::memory_order_relaxed);
    slot.mem_peak.store(mem_peak, std::memory_order_relaxed);
    slot.tag.store((seq + 1) * 2, std::memory_order_release);
  }

  uint64_t threshold = slow_threshold_ns_.load(std::memory_order_relaxed);
  if (threshold != 0 && duration_ns >= threshold) {
    std::lock_guard<std::mutex> lock(slow_mu_);
    SlowQueryEntry entry;
    entry.seq = seq;
    entry.kind = kind;
    entry.verdict = verdict;
    entry.duration_ns = duration_ns;
    entry.work = work;
    entry.mem_peak = mem_peak;
    entry.label = label_;
    slow_.push_back(std::move(entry));
    while (slow_.size() > kMaxSlowQueries) slow_.pop_front();
  }
}

std::vector<FlightEntry> FlightRecorder::Snapshot() const {
  std::vector<FlightEntry> out;
  out.reserve(kCapacity);
  for (size_t i = 0; i < kCapacity; ++i) {
    const Slot& slot = slots_[i];
    uint64_t t1 = slot.tag.load(std::memory_order_acquire);
    if (t1 == 0 || (t1 & 1) != 0) continue;
    FlightEntry entry;
    UnpackKindVerdict(slot.kind_verdict.load(std::memory_order_relaxed),
                      &entry.kind, &entry.verdict);
    entry.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    entry.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    entry.work = slot.work.load(std::memory_order_relaxed);
    entry.mem_peak = slot.mem_peak.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    uint64_t t2 = slot.tag.load(std::memory_order_relaxed);
    if (t1 != t2) continue;  // overwritten mid-copy: skip, never tear
    entry.seq = t1 / 2 - 1;
    out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEntry& a, const FlightEntry& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<SlowQueryEntry> FlightRecorder::SlowQueries() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return std::vector<SlowQueryEntry>(slow_.begin(), slow_.end());
}

uint64_t FlightRecorder::TotalRecorded() const {
  return next_seq_.load(std::memory_order_relaxed);
}

void FlightRecorder::SetSlowQueryThresholdNs(uint64_t ns) {
  slow_threshold_ns_.store(ns, std::memory_order_relaxed);
}

uint64_t FlightRecorder::SlowQueryThresholdNs() const {
  return slow_threshold_ns_.load(std::memory_order_relaxed);
}

void FlightRecorder::DumpToFd(int fd) const {
  char line[256];
  {
    LineBuf buf(line, sizeof(line));
    buf.Append("== rq flight recorder: ");
    buf.AppendU64(TotalRecorded());
    buf.Append(" queries recorded\n");
    WriteAll(fd, line, buf.len());
  }
  // Same seqlock read protocol as Snapshot, without allocation or sorting
  // (slot order approximates age order; seq disambiguates).
  for (size_t i = 0; i < kCapacity; ++i) {
    const Slot& slot = slots_[i];
    uint64_t t1 = slot.tag.load(std::memory_order_acquire);
    if (t1 == 0 || (t1 & 1) != 0) continue;
    QueryKind kind;
    int32_t verdict;
    UnpackKindVerdict(slot.kind_verdict.load(std::memory_order_relaxed),
                      &kind, &verdict);
    uint64_t start_ns = slot.start_ns.load(std::memory_order_relaxed);
    uint64_t duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    uint64_t work = slot.work.load(std::memory_order_relaxed);
    uint64_t mem_peak = slot.mem_peak.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.tag.load(std::memory_order_relaxed) != t1) continue;
    LineBuf buf(line, sizeof(line));
    buf.Append("seq=");
    buf.AppendU64(t1 / 2 - 1);
    buf.Append(" kind=");
    buf.Append(QueryKindName(kind));
    buf.Append(" verdict=");
    buf.Append(FlightVerdictName(verdict));
    buf.Append(" start_us=");
    buf.AppendU64(start_ns / 1000);
    buf.Append(" duration_us=");
    buf.AppendU64(duration_ns / 1000);
    buf.Append(" work=");
    buf.AppendU64(work);
    buf.Append(" mem_peak=");
    buf.AppendU64(mem_peak);
    buf.Append("\n");
    WriteAll(fd, line, buf.len());
  }
}

void FlightRecorder::Reset() {
  next_seq_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) {
    slot.tag.store(0, std::memory_order_relaxed);
    slot.kind_verdict.store(0, std::memory_order_relaxed);
    slot.start_ns.store(0, std::memory_order_relaxed);
    slot.duration_ns.store(0, std::memory_order_relaxed);
    slot.work.store(0, std::memory_order_relaxed);
    slot.mem_peak.store(0, std::memory_order_relaxed);
  }
  epoch_ns_ = SteadyNowNs();
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_.clear();
}

namespace {
// Per-thread nesting depth; only the outermost FlightTimer on a thread
// records (see the class comment in flight_recorder.h).
thread_local uint32_t t_flight_depth = 0;
}  // namespace

FlightTimer::FlightTimer(QueryKind kind)
    : kind_(kind),
      start_ns_(SteadyNowNs()),
      outermost_(t_flight_depth++ == 0) {}

FlightTimer::~FlightTimer() {
  if (!finished_) Finish(kFlightVerdictAbandoned, 0);
  --t_flight_depth;
}

void FlightTimer::Finish(int32_t verdict, uint64_t work) {
  if (finished_) return;
  finished_ = true;
  if (!outermost_) return;
  // The memory high-water mark of the query this timer wraps, when the
  // entry point runs under a MemContext (CLI / batch engine installs one).
  const MemContext* mem = MemContext::Current();
  FlightRecorder::Global().Record(kind_, verdict, SteadyNowNs() - start_ns_,
                                  work,
                                  mem != nullptr ? mem->peak_total_bytes()
                                                 : 0);
}

void FlightRecorder::SetQueryLabel(std::string label) {
  std::lock_guard<std::mutex> lock(slow_mu_);
  label_ = std::move(label);
}

std::string FlightRecorder::QueryLabel() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return label_;
}

void SetFlightQueryLabel(std::string label) {
  FlightRecorder::Global().SetQueryLabel(std::move(label));
}

Status WriteFlightDump(const std::string& path) {
  FlightRecorder& recorder = FlightRecorder::Global();
  std::FILE* f = path == "-" ? stderr : std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InvalidArgumentError("cannot open " + path + " for writing");
  }
  std::vector<FlightEntry> entries = recorder.Snapshot();
  std::fprintf(f,
               "== rq flight recorder: %" PRIu64
               " queries recorded, %zu in ring, %" PRIu64 " dropped\n",
               recorder.TotalRecorded(), entries.size(),
               GetCounter("obs.flight_dropped")->value());
  for (const FlightEntry& entry : entries) {
    std::fprintf(f,
                 "seq=%" PRIu64
                 " kind=%s verdict=%s start_us=%" PRIu64
                 " duration_us=%" PRIu64 " work=%" PRIu64
                 " mem_peak=%" PRIu64 "\n",
                 entry.seq, QueryKindName(entry.kind),
                 FlightVerdictName(entry.verdict), entry.start_ns / 1000,
                 entry.duration_ns / 1000, entry.work, entry.mem_peak);
  }
  std::vector<SlowQueryEntry> slow = recorder.SlowQueries();
  std::fprintf(f, "== slow queries (threshold %" PRIu64 " ms): %zu\n",
               recorder.SlowQueryThresholdNs() / 1000000, slow.size());
  for (const SlowQueryEntry& entry : slow) {
    std::fprintf(f,
                 "seq=%" PRIu64 " kind=%s verdict=%s duration_us=%" PRIu64
                 " work=%" PRIu64 " mem_peak=%" PRIu64 "%s%s\n",
                 entry.seq, QueryKindName(entry.kind),
                 FlightVerdictName(entry.verdict), entry.duration_ns / 1000,
                 entry.work, entry.mem_peak,
                 entry.label.empty() ? "" : " label=",
                 entry.label.c_str());
  }
  if (f != stderr) std::fclose(f);
  return Status::Ok();
}

#if !defined(_WIN32)
namespace {

void FlightSignalHandler(int sig) {
  const char* header = "\n== fatal signal; dumping flight recorder\n";
  WriteAll(2, header, std::strlen(header));
  FlightRecorder::Global().DumpToFd(2);
  // SA_RESETHAND restored the default disposition; re-raise to die with
  // the original signal (and its exit status / core dump).
  ::raise(sig);
}

}  // namespace

void InstallFlightSignalHandler() {
  // Force the recorder (and the dropped counter) into existence outside
  // signal context.
  FlightRecorder::Global();
  FlightDroppedCounter();
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = FlightSignalHandler;
  action.sa_flags = SA_RESETHAND;
  sigemptyset(&action.sa_mask);
  for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    ::sigaction(sig, &action, nullptr);
  }
}
#else
void InstallFlightSignalHandler() {}
#endif

}  // namespace obs
}  // namespace rq

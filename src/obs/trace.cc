#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "obs/counters.h"
#include "obs/histogram.h"

namespace rq {
namespace obs {

namespace {

std::atomic<TraceMode> g_mode{TraceMode::kDisabled};

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Internal per-name aggregate: the exported SpanStats plus the duration
// histogram backing its quantiles.
struct StatsEntry {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  std::unique_ptr<Histogram> durations = std::make_unique<Histogram>();
};

struct TraceState {
  std::mutex mu;
  // Session identity. Bumped by every SetTraceMode/ClearTrace; spans and
  // per-thread bookkeeping from older generations are discarded rather
  // than linked into the new session.
  std::atomic<uint64_t> generation{1};
  // Session clock origin, as an absolute steady-clock timestamp (atomic
  // so open spans can read it without the lock).
  std::atomic<uint64_t> session_start_ns{SteadyNowNs()};
  uint32_t next_tid = 0;  // dense per-session thread ids
  std::vector<SpanRecord> records;
  std::map<std::string, StatsEntry, std::less<>> stats;
  uint64_t dropped = 0;
};

TraceState& State() {
  static TraceState* state = new TraceState();  // never destroyed
  return *state;
}

Counter& DroppedCounter() {
  static Counter* counter = GetCounter("obs.dropped_spans");
  return *counter;
}

// Per-thread stack of open span record indices (-1 for aggregate-only
// spans), used to derive depth and parent for new spans. Tagged with the
// session generation so a reset invalidates stale indices and tids.
struct ThreadStack {
  uint64_t generation = 0;
  uint32_t tid = 0;
  bool tid_valid = false;
  std::vector<int32_t> open;
};

ThreadStack& LocalStack() {
  thread_local ThreadStack stack;
  return stack;
}

// Drops this thread's bookkeeping if it belongs to an older session.
// Callable without the state lock (generation is atomic).
void SyncThreadToSession(const TraceState& state, ThreadStack& stack,
                         uint64_t* generation_out) {
  uint64_t generation = state.generation.load(std::memory_order_relaxed);
  if (stack.generation != generation) {
    stack.generation = generation;
    stack.tid_valid = false;
    stack.open.clear();
  }
  *generation_out = generation;
}

void ClearLocked(TraceState& state) {
  state.records.clear();
  state.stats.clear();
  state.dropped = 0;
  state.next_tid = 0;
  state.session_start_ns.store(SteadyNowNs(), std::memory_order_relaxed);
  state.generation.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceMode CurrentTraceMode() {
  return g_mode.load(std::memory_order_relaxed);
}

uint64_t TraceSessionStartNs() {
  return State().session_start_ns.load(std::memory_order_relaxed);
}

void SetTraceMode(TraceMode mode) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  g_mode.store(mode, std::memory_order_relaxed);
  ClearLocked(state);
}

void ClearTrace() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  ClearLocked(state);
}

std::vector<SpanRecord> CollectSpanRecords() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.records;
}

std::vector<SpanStats> CollectSpanStats() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<SpanStats> out;
  out.reserve(state.stats.size());
  for (const auto& [name, entry] : state.stats) {
    SpanStats stats;
    stats.name = name;
    stats.count = entry.count;
    stats.total_ns = entry.total_ns;
    stats.p50_ns = entry.durations->ValueAtQuantile(0.50);
    stats.p90_ns = entry.durations->ValueAtQuantile(0.90);
    stats.p99_ns = entry.durations->ValueAtQuantile(0.99);
    stats.max_ns = entry.durations->max();
    out.push_back(std::move(stats));
  }
  return out;
}

uint64_t DroppedSpanRecords() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.dropped;
}

void ScopedSpan::Begin(const char* name) {
  active_ = true;
  name_ = name;
  record_index_ = -1;
  TraceState& state = State();
  ThreadStack& stack = LocalStack();
  // One timestamp for both the record row and the duration base, so a
  // parent's start+duration always covers its children's. Absolute, so a
  // session reset mid-span cannot corrupt the duration.
  start_abs_ns_ = SteadyNowNs();
  if (CurrentTraceMode() == TraceMode::kFull) {
    std::lock_guard<std::mutex> lock(state.mu);
    SyncThreadToSession(state, stack, &generation_);
    if (!stack.tid_valid) {
      stack.tid = state.next_tid++;
      stack.tid_valid = true;
    }
    if (state.records.size() < kMaxRecordedSpans) {
      SpanRecord record;
      record.name = name;
      record.start_ns =
          start_abs_ns_ -
          state.session_start_ns.load(std::memory_order_relaxed);
      record.depth = static_cast<uint32_t>(stack.open.size());
      record.tid = stack.tid;
      // Nearest enclosing span of THIS thread that has a recorded row;
      // the stack holds only this thread's current-session indices, so
      // the parent can never land on another worker's span.
      for (auto it = stack.open.rbegin(); it != stack.open.rend(); ++it) {
        if (*it >= 0) {
          record.parent = *it;
          break;
        }
      }
      record_index_ = static_cast<int32_t>(state.records.size());
      state.records.push_back(std::move(record));
    } else {
      ++state.dropped;
      DroppedCounter().Increment();
    }
  } else {
    SyncThreadToSession(state, stack, &generation_);
  }
  stack.open.push_back(record_index_);
}

void ScopedSpan::End() {
  TraceState& state = State();
  uint64_t duration = SteadyNowNs() - start_abs_ns_;
  ThreadStack& stack = LocalStack();
  // Only unwind a stack that still belongs to this span's session; a
  // reset already cleared it.
  if (stack.generation == generation_ && !stack.open.empty()) {
    stack.open.pop_back();
  }
  std::lock_guard<std::mutex> lock(state.mu);
  // A span that straddled a session reset is discarded entirely: its row
  // index and aggregates would otherwise leak into the new session.
  if (state.generation.load(std::memory_order_relaxed) != generation_) {
    active_ = false;
    return;
  }
  if (record_index_ >= 0 &&
      static_cast<size_t>(record_index_) < state.records.size()) {
    state.records[record_index_].duration_ns = duration;
  }
  auto it = state.stats.find(name_);
  if (it == state.stats.end()) {
    it = state.stats.emplace(name_, StatsEntry{}).first;
  }
  ++it->second.count;
  it->second.total_ns += duration;
  it->second.durations->Record(duration);
  active_ = false;
}

void ScopedSpan::AddAttr(const char* key, uint64_t value) {
  if (!active_ || record_index_ < 0) return;
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.generation.load(std::memory_order_relaxed) != generation_) {
    return;
  }
  if (static_cast<size_t>(record_index_) < state.records.size()) {
    state.records[record_index_].attrs.emplace_back(key, value);
  }
}

}  // namespace obs
}  // namespace rq

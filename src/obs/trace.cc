#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>

namespace rq {
namespace obs {

namespace {

std::atomic<TraceMode> g_mode{TraceMode::kDisabled};

struct TraceState {
  std::mutex mu;
  std::chrono::steady_clock::time_point session_start =
      std::chrono::steady_clock::now();
  std::vector<SpanRecord> records;
  std::map<std::string, SpanStats, std::less<>> stats;
  uint64_t dropped = 0;
};

TraceState& State() {
  static TraceState* state = new TraceState();  // never destroyed
  return *state;
}

// Per-thread stack of open span record indices (-1 for aggregate-only
// spans), used to derive depth and parent for new spans.
struct ThreadStack {
  std::vector<int32_t> open;
};

ThreadStack& LocalStack() {
  thread_local ThreadStack stack;
  return stack;
}

uint64_t NowNs(const TraceState& state) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - state.session_start)
          .count());
}

void ClearLocked(TraceState& state) {
  state.records.clear();
  state.stats.clear();
  state.dropped = 0;
  state.session_start = std::chrono::steady_clock::now();
}

}  // namespace

TraceMode CurrentTraceMode() {
  return g_mode.load(std::memory_order_relaxed);
}

void SetTraceMode(TraceMode mode) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  g_mode.store(mode, std::memory_order_relaxed);
  ClearLocked(state);
}

void ClearTrace() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  ClearLocked(state);
}

std::vector<SpanRecord> CollectSpanRecords() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.records;
}

std::vector<SpanStats> CollectSpanStats() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<SpanStats> out;
  out.reserve(state.stats.size());
  for (const auto& [name, stats] : state.stats) out.push_back(stats);
  return out;
}

uint64_t DroppedSpanRecords() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.dropped;
}

void ScopedSpan::Begin(const char* name) {
  active_ = true;
  name_ = name;
  record_index_ = -1;
  TraceState& state = State();
  ThreadStack& stack = LocalStack();
  // One timestamp for both the record row and the duration base, so a
  // parent's start+duration always covers its children's.
  start_ns_ = NowNs(state);
  if (CurrentTraceMode() == TraceMode::kFull) {
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.records.size() < kMaxRecordedSpans) {
      SpanRecord record;
      record.name = name;
      record.start_ns = start_ns_;
      record.depth = static_cast<uint32_t>(stack.open.size());
      // Nearest enclosing span that has a recorded row.
      for (auto it = stack.open.rbegin(); it != stack.open.rend(); ++it) {
        if (*it >= 0) {
          record.parent = *it;
          break;
        }
      }
      record_index_ = static_cast<int32_t>(state.records.size());
      state.records.push_back(std::move(record));
    } else {
      ++state.dropped;
    }
  }
  stack.open.push_back(record_index_);
}

void ScopedSpan::End() {
  TraceState& state = State();
  uint64_t duration = NowNs(state) - start_ns_;
  ThreadStack& stack = LocalStack();
  if (!stack.open.empty()) stack.open.pop_back();
  std::lock_guard<std::mutex> lock(state.mu);
  if (record_index_ >= 0 &&
      static_cast<size_t>(record_index_) < state.records.size()) {
    state.records[record_index_].duration_ns = duration;
  }
  auto it = state.stats.find(name_);
  if (it == state.stats.end()) {
    it = state.stats.emplace(name_, SpanStats{name_, 0, 0}).first;
  }
  ++it->second.count;
  it->second.total_ns += duration;
  active_ = false;
}

void ScopedSpan::AddAttr(const char* key, uint64_t value) {
  if (!active_ || record_index_ < 0) return;
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (static_cast<size_t>(record_index_) < state.records.size()) {
    state.records[record_index_].attrs.emplace_back(key, value);
  }
}

}  // namespace obs
}  // namespace rq

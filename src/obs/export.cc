#include "obs/export.h"

#include <cinttypes>

#include "obs/counters.h"
#include "obs/gauge.h"
#include "obs/histogram.h"
#include "obs/mem_stats.h"
#include "obs/trace.h"

namespace rq {
namespace obs {

JsonValue SnapshotJson() {
  // Refresh the OS view (mem.peak_rss_bytes) so every snapshot carries a
  // current RSS sample next to the self-reported mem.* accounting.
  SampleRssGauge();
  JsonValue root = JsonValue::Object();
  root.Set("schema", JsonValue::String("rq-obs/2"));

  JsonValue counters = JsonValue::Array();
  for (const CounterSample& sample : Registry::Global().Snapshot()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(sample.name));
    entry.Set("value", JsonValue::Number(sample.value));
    counters.Append(std::move(entry));
  }
  root.Set("counters", std::move(counters));

  JsonValue gauges = JsonValue::Array();
  for (const GaugeSample& sample : GaugeRegistry::Global().Snapshot()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(sample.name));
    entry.Set("value", JsonValue::Number(sample.value));
    entry.Set("peak", JsonValue::Number(sample.peak));
    gauges.Append(std::move(entry));
  }
  root.Set("gauges", std::move(gauges));

  JsonValue histograms = JsonValue::Array();
  for (const HistogramSample& sample :
       HistogramRegistry::Global().Snapshot()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(sample.name));
    entry.Set("count", JsonValue::Number(sample.count));
    entry.Set("sum", JsonValue::Number(sample.sum));
    entry.Set("max", JsonValue::Number(sample.max));
    entry.Set("p50", JsonValue::Number(sample.p50));
    entry.Set("p90", JsonValue::Number(sample.p90));
    entry.Set("p99", JsonValue::Number(sample.p99));
    histograms.Append(std::move(entry));
  }
  root.Set("histograms", std::move(histograms));

  JsonValue span_stats = JsonValue::Array();
  for (const SpanStats& stats : CollectSpanStats()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(stats.name));
    entry.Set("count", JsonValue::Number(stats.count));
    entry.Set("total_ns", JsonValue::Number(stats.total_ns));
    entry.Set("p50_ns", JsonValue::Number(stats.p50_ns));
    entry.Set("p90_ns", JsonValue::Number(stats.p90_ns));
    entry.Set("p99_ns", JsonValue::Number(stats.p99_ns));
    entry.Set("max_ns", JsonValue::Number(stats.max_ns));
    span_stats.Append(std::move(entry));
  }
  root.Set("span_stats", std::move(span_stats));

  if (CurrentTraceMode() == TraceMode::kFull) {
    JsonValue spans = JsonValue::Array();
    for (const SpanRecord& record : CollectSpanRecords()) {
      JsonValue entry = JsonValue::Object();
      entry.Set("name", JsonValue::String(record.name));
      entry.Set("start_ns", JsonValue::Number(record.start_ns));
      entry.Set("duration_ns", JsonValue::Number(record.duration_ns));
      entry.Set("depth", JsonValue::Number(static_cast<uint64_t>(record.depth)));
      entry.Set("parent", JsonValue::Number(static_cast<int64_t>(record.parent)));
      entry.Set("tid", JsonValue::Number(static_cast<uint64_t>(record.tid)));
      JsonValue attrs = JsonValue::Object();
      for (const auto& [key, value] : record.attrs) {
        attrs.Set(key, JsonValue::Number(value));
      }
      entry.Set("attrs", std::move(attrs));
      spans.Append(std::move(entry));
    }
    root.Set("spans", std::move(spans));
  }
  root.Set("dropped_spans", JsonValue::Number(DroppedSpanRecords()));
  return root;
}

std::string SnapshotJsonString() { return SnapshotJson().Dump(2); }

Status WriteSnapshotJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InvalidArgumentError("cannot open " + path + " for writing");
  }
  std::string text = SnapshotJsonString();
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return InternalError("short write to " + path);
  }
  return Status::Ok();
}

void PrintSpanTree(std::FILE* out) {
  if (CurrentTraceMode() == TraceMode::kFull) {
    std::vector<SpanRecord> records = CollectSpanRecords();
    if (records.empty()) {
      std::fprintf(out, "(no spans recorded)\n");
    }
    // Multi-threaded traces prefix each row with its lane so interleaved
    // worker spans stay attributable (full lane view: --chrome-trace).
    bool multi_thread = false;
    for (const SpanRecord& record : records) {
      if (record.tid != 0) multi_thread = true;
    }
    for (const SpanRecord& record : records) {
      if (multi_thread) std::fprintf(out, "[t%" PRIu32 "] ", record.tid);
      std::fprintf(out, "%*s%s  %.3f ms", 2 * record.depth, "",
                   record.name.c_str(),
                   static_cast<double>(record.duration_ns) / 1e6);
      for (const auto& [key, value] : record.attrs) {
        std::fprintf(out, "  %s=%" PRIu64, key.c_str(), value);
      }
      std::fprintf(out, "\n");
    }
    uint64_t dropped = DroppedSpanRecords();
    if (dropped > 0) {
      std::fprintf(out,
                   "(%" PRIu64
                   " spans dropped beyond the record cap; counter "
                   "obs.dropped_spans)\n",
                   dropped);
    }
  } else {
    for (const SpanStats& stats : CollectSpanStats()) {
      std::fprintf(out,
                   "%s  count=%" PRIu64 "  total=%.3f ms  p50=%.3f ms  "
                   "p99=%.3f ms  max=%.3f ms\n",
                   stats.name.c_str(), stats.count,
                   static_cast<double>(stats.total_ns) / 1e6,
                   static_cast<double>(stats.p50_ns) / 1e6,
                   static_cast<double>(stats.p99_ns) / 1e6,
                   static_cast<double>(stats.max_ns) / 1e6);
    }
  }
  std::fprintf(out, "counters:\n");
  for (const CounterSample& sample : Registry::Global().Snapshot()) {
    if (sample.value == 0) continue;
    std::fprintf(out, "  %s = %" PRIu64 "\n", sample.name.c_str(),
                 sample.value);
  }
  bool gauge_header = false;
  for (const GaugeSample& sample : GaugeRegistry::Global().Snapshot()) {
    if (sample.value == 0 && sample.peak == 0) continue;
    if (!gauge_header) {
      std::fprintf(out, "gauges:\n");
      gauge_header = true;
    }
    std::fprintf(out, "  %s = %" PRId64 " (peak %" PRId64 ")\n",
                 sample.name.c_str(), sample.value, sample.peak);
  }
  bool histogram_header = false;
  for (const HistogramSample& sample :
       HistogramRegistry::Global().Snapshot()) {
    if (sample.count == 0) continue;
    if (!histogram_header) {
      std::fprintf(out, "histograms:\n");
      histogram_header = true;
    }
    std::fprintf(out,
                 "  %s  count=%" PRIu64 "  p50=%" PRIu64 "  p90=%" PRIu64
                 "  p99=%" PRIu64 "  max=%" PRIu64 "\n",
                 sample.name.c_str(), sample.count, sample.p50, sample.p90,
                 sample.p99, sample.max);
  }
}

}  // namespace obs
}  // namespace rq

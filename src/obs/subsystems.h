// Typed views over the observability registry: one struct per instrumented
// subsystem, each member a cached handle to a registered counter. These
// define the unified counter vocabulary (`<subsystem>.<noun>`) that replaces
// the previously divergent per-module stats fields:
//
//   legacy field / bench counter            unified counter
//   ------------------------------------    --------------------------------
//   LanguageContainmentResult::             containment.states_explored
//       explored_states
//   PathContainmentResult::explored_states  containment.states_explored
//   bench "states/bound" (fold size)        fold.states
//   DatalogEvalStats::rounds                datalog.rounds
//   DatalogEvalStats::rule_applications     datalog.rule_applications
//   DatalogEvalStats::tuples_considered     datalog.tuples_considered
//   DatalogEvalStats::tuples_derived        datalog.tuples_derived
//
// The legacy structs remain as thin adapters (same fields, same call
// signatures); the subsystems fill both. Hot loops accumulate into locals
// and flush here once per operation, so registry traffic is O(operations),
// not O(inner-loop steps). Full vocabulary: docs/OBSERVABILITY.md.
//
// Alongside the counters (monotonic totals), subsystems flush per-operation
// DISTRIBUTIONS into value histograms (obs/histogram.h) — a histogram
// sharing a counter's name records that quantity per operation rather than
// in total — and PEAKS into max-tracking gauges (obs/gauge.h).
#ifndef RQ_OBS_SUBSYSTEMS_H_
#define RQ_OBS_SUBSYSTEMS_H_

#include "obs/counters.h"
#include "obs/gauge.h"
#include "obs/histogram.h"

namespace rq {
namespace obs {

// Regex → NFA translation (paper §3.1).
struct RegexCounters {
  Counter& nfa_builds = *GetCounter("regex.nfa_builds");
  Counter& nfa_states = *GetCounter("regex.nfa_states");

  static RegexCounters& Get();
};

// On-the-fly product search for language containment (§3.2, Lemma 1) —
// shared by the plain, antichain, explicit, and fold-pipeline checkers.
struct ContainmentCounters {
  Counter& checks = *GetCounter("containment.checks");
  Counter& states_explored = *GetCounter("containment.states_explored");
  Counter& refuted = *GetCounter("containment.refuted");
  // Per-check distribution of the states_explored quantity.
  Histogram& states_explored_per_check =
      *GetHistogram("containment.states_explored");

  static ContainmentCounters& Get();
};

// Fold construction (§3.2, Lemma 3).
struct FoldCounters {
  Counter& constructions = *GetCounter("fold.constructions");
  Counter& states = *GetCounter("fold.states");
  Counter& transitions = *GetCounter("fold.transitions");
  // Per-construction distribution of the states quantity, and the largest
  // fold automaton ever built.
  Histogram& states_per_construction = *GetHistogram("fold.states");
  Gauge& peak_states = *GetGauge("fold.peak_states");

  static FoldCounters& Get();
};

// 2NFA complementation (Lemma 4, Vardi 1989).
struct ComplementCounters {
  Counter& constructions = *GetCounter("complement.constructions");
  Counter& states = *GetCounter("complement.states");
  Counter& budget_exhausted = *GetCounter("complement.budget_exhausted");
  // Largest complement automaton ever built (the EXPSPACE pressure point).
  Gauge& peak_states = *GetGauge("complement.peak_states");

  static ComplementCounters& Get();
};

// CQ/UCQ homomorphism search (Chandra-Merlin / Sagiv-Yannakakis, §2.3).
struct CqCounters {
  Counter& hom_checks = *GetCounter("cq.hom_checks");
  Counter& canonical_evals = *GetCounter("cq.canonical_evals");

  static CqCounters& Get();
};

// RQ expansion enumeration and containment dispatch (§3.4, Theorem 7).
struct RqCounters {
  Counter& evals = *GetCounter("rq.evals");
  Counter& closure_tuples = *GetCounter("rq.closure_tuples");
  Counter& expansions = *GetCounter("rq.expansions");
  Counter& expansion_checks = *GetCounter("rq.expansion_checks");
  Counter& dispatch_2rpq = *GetCounter("rq.dispatch_2rpq");
  Counter& dispatch_uc2rpq = *GetCounter("rq.dispatch_uc2rpq");
  Counter& dispatch_expansion = *GetCounter("rq.dispatch_expansion");
  Counter& dispatch_structural = *GetCounter("rq.dispatch_structural");
  // Expansions materialized by the most recent ExpandRq (peak = largest
  // expansion set any single enumeration held live).
  Gauge& live_expansions = *GetGauge("rq.live_expansions");

  static RqCounters& Get();
};

// Content-addressed automata/verdict cache (src/cache/, docs/CACHING.md).
// These are the cross-kind aggregates; each construction kind additionally
// registers `cache.<kind>_hits` / `_misses` / `_evictions` on first use.
struct CacheCounters {
  Counter& hits = *GetCounter("cache.hits");
  Counter& misses = *GetCounter("cache.misses");
  Counter& evictions = *GetCounter("cache.evictions");
  Counter& inserts = *GetCounter("cache.inserts");
  // Bytes currently charged across all kinds (peak = high-water mark).
  Gauge& bytes_in_use = *GetGauge("cache.bytes_in_use");

  static CacheCounters& Get();
};

// Graph evaluation: product-of-graph-and-automaton BFS over immutable CSR
// snapshots (graph/snapshot.h, pathquery/path_query.h). Workers flush once
// per single-source evaluation; histograms record per-eval distributions
// (frontier = per-BFS-level product frontier size, the memory pressure
// signal; product_states = product states visited per eval, the work
// signal).
struct GraphEvalCounters {
  Counter& snapshots = *GetCounter("graph.snapshots");
  Counter& evals = *GetCounter("graph.evals");
  Counter& product_states = *GetCounter("graph.product_states");
  // Live mutation path (server/graph_store.h): applied update ops, and the
  // wall-clock cost of republishing a graph version (frozen copy + CSR
  // snapshot + relational image) per update batch.
  Counter& mutations = *GetCounter("graph.mutations");
  Histogram& rebuild_ns = *GetHistogram("graph.rebuild_ns");
  // Per-level frontier sizes and per-eval product states visited.
  Histogram& frontier_per_level = *GetHistogram("graph.frontier");
  Histogram& product_states_per_eval = *GetHistogram("graph.product_states");
  // Widest product frontier any single BFS level ever reached.
  Gauge& peak_frontier = *GetGauge("graph.peak_frontier");
  // Current graph version of the serving store; monotonic (a gauge, not a
  // counter, because it is a level read off the store, not an event count).
  Gauge& epoch = *GetGauge("graph.epoch");

  static GraphEvalCounters& Get();
};

// Incremental closure maintenance (relational/incremental.h, the systems
// twin of the paper's recursion-as-transitive-closure restriction §3.4).
// pairs_added counts closure pairs derived from deltas (the work the
// fixpoint never re-ran); fallbacks counts label closures demoted to full
// re-evaluation because a delta product blew the budget or a deadline/
// memory trip left the closure partial.
struct IncrCounters {
  Counter& pairs_added = *GetCounter("incr.pairs_added");
  Counter& fallbacks = *GetCounter("incr.fallbacks");
  Counter& seeds = *GetCounter("incr.seeds");
  Counter& closure_evals = *GetCounter("incr.closure_evals");

  static IncrCounters& Get();
};

// Batch containment engine (src/containment/batch.h).
struct BatchCounters {
  Counter& batches = *GetCounter("containment.batches");
  Counter& batch_checks = *GetCounter("containment.batch_checks");
  // Jobs submitted but not yet finished (peak = deepest backlog any
  // overlapping set of batches ever reached).
  Gauge& queue_depth = *GetGauge("containment.batch_queue_depth");

  static BatchCounters& Get();
};

// Long-lived query service (src/server/, docs/SERVING.md). Requests counts
// every framed request read off a connection; shed counts admission-control
// rejections (bounded queue full or in-flight bytes over the threshold) —
// a rising shed rate is the serving layer's backpressure signal. Latency
// is measured from frame decode to response write; queue_wait from enqueue
// to worker pickup (its p99 growing toward the latency p99 means the
// worker pool, not the checkers, is the bottleneck).
struct ServerCounters {
  Counter& connections = *GetCounter("server.connections");
  Counter& requests = *GetCounter("server.requests");
  Counter& responses = *GetCounter("server.responses");
  Counter& shed = *GetCounter("server.shed");
  Counter& errors = *GetCounter("server.errors");
  Counter& drained = *GetCounter("server.drained");
  Counter& metrics_scrapes = *GetCounter("server.metrics_scrapes");
  Histogram& request_latency_ns = *GetHistogram("server.request_latency_ns");
  Histogram& queue_wait_ns = *GetHistogram("server.queue_wait_ns");
  // Live connections / queued-but-not-picked-up requests (peaks = worst
  // concurrency and deepest backlog the process ever saw).
  Gauge& active_connections = *GetGauge("server.active_connections");
  Gauge& queue_depth = *GetGauge("server.queue_depth");
  Gauge& inflight_requests = *GetGauge("server.inflight_requests");

  static ServerCounters& Get();
};

// The observability layer's own health counters: spans past the tracer's
// record cap (obs/trace.h) and completed-query summaries evicted from (or
// lost to) the flight-recorder ring (obs/flight_recorder.h).
struct ObsCounters {
  Counter& dropped_spans = *GetCounter("obs.dropped_spans");
  Counter& flight_dropped = *GetCounter("obs.flight_dropped");

  static ObsCounters& Get();
};

// Deadline / cancellation layer (common/deadline.h, docs/ROBUSTNESS.md).
// expired/cancelled count tripped ExecContexts (once per context, however
// many loops polled it); slack_ns records how much headroom finite-deadline
// operations finished with — a shrinking p50 means timeouts are about to
// start firing.
struct DeadlineCounters {
  Counter& expired = *GetCounter("deadline.expired");
  Counter& cancelled = *GetCounter("deadline.cancelled");
  Histogram& slack_ns = *GetHistogram("deadline.slack_ns");

  static DeadlineCounters& Get();
};

// Datalog fixpoint engine (§2.2), naive and semi-naive modes.
struct DatalogCounters {
  Counter& evals = *GetCounter("datalog.evals");
  Counter& rounds = *GetCounter("datalog.rounds");
  Counter& rule_applications = *GetCounter("datalog.rule_applications");
  Counter& tuples_considered = *GetCounter("datalog.tuples_considered");
  Counter& tuples_derived = *GetCounter("datalog.tuples_derived");
  // Per-evaluation distribution of the rounds quantity (fixpoint depth).
  Histogram& rounds_per_eval = *GetHistogram("datalog.rounds");

  static DatalogCounters& Get();
};

}  // namespace obs
}  // namespace rq

#endif  // RQ_OBS_SUBSYSTEMS_H_

// Process-wide registry of named counters (the observability layer's
// metric store; see docs/OBSERVABILITY.md).
//
// Counters are registered on first use and live for the process lifetime;
// handles are stable pointers, so hot paths hold a Counter* and add to it
// with a relaxed atomic — no lock, no lookup. Subsystems batch their counts
// locally and flush once per operation (see obs/subsystems.h), keeping the
// instrumented hot loops free of shared-memory traffic.
//
// Naming scheme: `<subsystem>.<noun>`, lower_snake_case nouns, e.g.
// `containment.states_explored`, `datalog.tuples_considered`. The full
// vocabulary is documented in docs/OBSERVABILITY.md and defined in
// obs/subsystems.h.
#ifndef RQ_OBS_COUNTERS_H_
#define RQ_OBS_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rq {
namespace obs {

// A named monotonic counter. Obtained from the registry; never destroyed.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  std::string name_;
  std::atomic<uint64_t> value_{0};
};

struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

// The process-wide counter registry. Lookup takes a lock; callers cache the
// returned handle (cheap pointer) instead of looking up per event.
class Registry {
 public:
  static Registry& Global();

  // Interns `name`, returning the same handle for the same name forever.
  Counter* GetCounter(std::string_view name);

  // Name-sorted snapshot of all registered counters.
  std::vector<CounterSample> Snapshot() const;

  // Resets every counter to zero. Meant for tests and for bench harness
  // runs that want per-run deltas; counters themselves stay registered.
  void ResetAll();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
};

// Shorthand for Registry::Global().GetCounter(name).
Counter* GetCounter(std::string_view name);

// Captures all counter values at construction; Delta(name) reports how much
// a counter grew since then (0 for counters registered later with no
// baseline). The standard way for tests and CLI tools to attribute counts
// to one operation.
class CounterDelta {
 public:
  CounterDelta();

  uint64_t Delta(std::string_view name) const;

  // All counters that grew since construction, name-sorted.
  std::vector<CounterSample> Deltas() const;

 private:
  std::map<std::string, uint64_t, std::less<>> baseline_;
};

}  // namespace obs
}  // namespace rq

#endif  // RQ_OBS_COUNTERS_H_

#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rq {
namespace obs {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::Number(uint64_t value) {
  return Number(static_cast<double>(value));
}

JsonValue JsonValue::Number(int64_t value) {
  return Number(static_cast<double>(value));
}

JsonValue JsonValue::String(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

void JsonValue::Set(std::string key, JsonValue value) {
  for (auto& [existing, slot] : members_) {
    if (existing == key) {
      slot = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [existing, value] : members_) {
    if (existing == key) return &value;
  }
  return nullptr;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

void AppendNumber(double value, std::string* out) {
  // JSON has no inf/nan tokens; render them as null rather than emitting a
  // bare "inf" that breaks every downstream parser (Google Benchmark's
  // items_per_second is +inf whenever the coarse CPU clock reads zero in a
  // smoke run).
  if (!std::isfinite(value)) {
    *out += "null";
    return;
  }
  // Integers (the common case: counters, nanosecond timings) print without
  // a fractional part so the schema stays stable and diffable.
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    *out += buf;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

void DumpTo(const JsonValue& v, int indent, int depth, std::string* out) {
  auto newline = [&](int d) {
    if (indent < 0) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * d, ' ');
  };
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
    case JsonValue::Kind::kBool:
      *out += v.bool_value() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      AppendNumber(v.number_value(), out);
      return;
    case JsonValue::Kind::kString:
      out->push_back('"');
      *out += JsonEscape(v.string_value());
      out->push_back('"');
      return;
    case JsonValue::Kind::kArray: {
      if (v.items().empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        DumpTo(item, indent, depth + 1, out);
      }
      newline(depth);
      out->push_back(']');
      return;
    }
    case JsonValue::Kind::kObject: {
      if (v.members().empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        out->push_back('"');
        *out += JsonEscape(key);
        *out += indent < 0 ? "\":" : "\": ";
        DumpTo(value, indent, depth + 1, out);
      }
      newline(depth);
      out->push_back('}');
      return;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    RQ_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return InvalidArgumentError("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + message);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      RQ_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::String(std::move(s));
    }
    if (c == 't') return ParseLiteral("true", JsonValue::Bool(true));
    if (c == 'f') return ParseLiteral("false", JsonValue::Bool(false));
    if (c == 'n') return ParseLiteral("null", JsonValue::Null());
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseLiteral(std::string_view literal, JsonValue value) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("invalid literal");
    }
    pos_ += literal.size();
    return value;
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) {
      return Error("invalid number '" + token + "'");
    }
    return JsonValue::Number(value);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("invalid \\u escape");
              }
            }
            // Only the escapes the writer emits (< 0x20) and plain ASCII
            // are supported; anything else is out of schema.
            if (code > 0x7f) return Error("non-ASCII \\u escape unsupported");
            out.push_back(static_cast<char>(code));
            break;
          }
          default:
            return Error("invalid escape");
        }
        continue;
      }
      out.push_back(c);
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Error("expected '['");
    JsonValue out = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return out;
    for (;;) {
      RQ_ASSIGN_OR_RETURN(JsonValue item, ParseValue());
      out.Append(std::move(item));
      SkipSpace();
      if (Consume(']')) return out;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Error("expected '{'");
    JsonValue out = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return out;
    for (;;) {
      SkipSpace();
      RQ_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      RQ_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      out.Set(std::move(key), std::move(value));
      SkipSpace();
      if (Consume('}')) return out;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(*this, indent, 0, &out);
  if (indent >= 0) out.push_back('\n');
  return out;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace obs
}  // namespace rq

// Per-query profiler: attributes observability deltas to ONE containment
// check or evaluation and renders an EXPLAIN ANALYZE-style report (text and
// JSON, schema "rq-profile/1"; see docs/OBSERVABILITY.md).
//
// The global registries (obs/counters.h, obs/gauge.h, obs/histogram.h) and
// the span tracer accumulate process-wide. A QueryProfile snapshots all of
// them when the profiled operation begins and again when it ends, and
// reports the WINDOW: counter deltas, per-name span-stat deltas, windowed
// histogram distributions (quantiles recomputed from raw bucket
// differences, so a profiled query's p50/p99 are its own, not the process
// lifetime's), and gauge begin/end levels with any peak raised inside the
// window. For a single-query run from a fresh registry the profile totals
// reconcile exactly with the global rq-obs/2 export; with the automata
// cache enabled across queries, verdict-cache hits make later profiles
// legitimately cheaper than the global totals (documented tolerance:
// profile deltas never exceed the global totals).
//
// Beyond registry windows, subsystems annotate the ACTIVE profile directly
// through the process-global hook (QueryProfile::Active()):
//  * pipeline entry points attach notes (dispatch method, pipeline chosen)
//    and stats (rounds, expansions checked, product states);
//  * the batch containment worker pool (containment/batch.h) reports one
//    row per worker — jobs executed and busy wall-time, accumulated
//    thread-locally by each worker and flushed once at pool exit, so the
//    per-worker numbers are isolated from each other by construction.
//
// One profile may be active at a time (CLI --profile wraps the whole
// query); a ProfileScope constructed while another is active records
// nothing and reports inactive.
#ifndef RQ_OBS_PROFILE_H_
#define RQ_OBS_PROFILE_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/mem.h"
#include "obs/histogram.h"
#include "obs/json.h"

namespace rq {
namespace obs {

// One counter that grew inside the window.
struct ProfileCounterDelta {
  std::string name;
  uint64_t delta = 0;
};

// Windowed distribution: quantiles over the bucket difference between the
// end and begin snapshots. `max` is the lower bound of the highest bucket
// the window touched (<= 25% below the true windowed maximum).
struct ProfileHistogramDelta {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
};

// Gauge levels at the window edges. `peak_raised` is true when the
// process-lifetime peak grew during the window (the window set a new
// high-water mark); `end_peak` is then that new peak.
struct ProfileGaugeDelta {
  std::string name;
  int64_t begin_value = 0;
  int64_t end_value = 0;
  int64_t end_peak = 0;
  bool peak_raised = false;
};

// Span aggregate delta (count and wall-time attributed to the window).
// Present only when tracing was enabled around the profiled operation.
struct ProfileSpanDelta {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
};

// One batch-pool worker's contribution (containment/batch.cc flushes one
// row per worker thread after the pool joins).
struct ProfileWorker {
  uint32_t worker = 0;
  uint64_t jobs = 0;
  uint64_t busy_ns = 0;
};

// Per-query memory attribution, read from the MemContext installed on the
// profiling thread when the window closes (common/mem.h). `present` is
// false when no context was installed — the memory section is then omitted
// from the report.
struct ProfileMemory {
  bool present = false;
  uint64_t peak_total_bytes = 0;
  uint64_t budget_bytes = 0;  // 0 = unlimited
  bool exceeded = false;
  std::array<uint64_t, kMemSubsystemCount> peak_subsystem_bytes{};
};

class QueryProfile {
 public:
  QueryProfile() = default;
  QueryProfile(const QueryProfile&) = delete;
  QueryProfile& operator=(const QueryProfile&) = delete;

  // The profile currently collecting (nullptr when none). Subsystem hook
  // sites null-check this; the load is one relaxed atomic.
  static QueryProfile* Active();

  // Starts the window and installs this profile as active (fails silently
  // — records nothing — if another profile is already active). `tool`,
  // `query_class`, `query_text` describe the operation for the report.
  void Begin(std::string tool, std::string query_class,
             std::string query_text);
  // Ends the window, computes all deltas, and deactivates.
  void End();

  // Subsystem annotations (thread-safe; callable between Begin and End).
  void AddNote(const std::string& key, std::string value);
  void AddStat(const std::string& key, uint64_t value);  // accumulates
  void RecordWorker(uint32_t worker, uint64_t jobs, uint64_t busy_ns);

  // Report accessors (valid after End).
  bool collected() const { return collected_; }
  uint64_t wall_ns() const { return wall_ns_; }
  const std::vector<ProfileCounterDelta>& counters() const {
    return counters_;
  }
  const std::vector<ProfileHistogramDelta>& histograms() const {
    return histograms_;
  }
  const std::vector<ProfileGaugeDelta>& gauges() const { return gauges_; }
  const std::vector<ProfileSpanDelta>& spans() const { return spans_; }
  const std::vector<ProfileWorker>& workers() const { return workers_; }
  const ProfileMemory& memory() const { return memory_; }

  // Renders the report. Schema "rq-profile/1":
  //   { "schema": "rq-profile/1",
  //     "tool": S, "class": S, "query": S, "wall_ns": N,
  //     "counters":   [ {"name": S, "delta": N}, ... ],        // sorted
  //     "histograms": [ {"name": S, "count": N, "sum": N,
  //                      "p50": N, "p90": N, "p99": N, "max": N}, ... ],
  //     "gauges":     [ {"name": S, "begin": N, "end": N,
  //                      "peak": N, "peak_raised": B}, ... ],
  //     "span_stats": [ {"name": S, "count": N, "total_ns": N}, ... ],
  //     "workers":    [ {"worker": N, "jobs": N, "busy_ns": N}, ... ],
  //     "memory":     { "peak_total_bytes": N, "budget_bytes": N,
  //                     "exceeded": B,
  //                     "peak_subsystem_bytes": { name: N, ... } },
  //     "stats":      { key: N, ... },
  //     "notes":      { key: S, ... } }
  // Arrays list only entries whose window is non-empty; "memory" appears
  // only when a MemContext was installed around the profiled operation.
  JsonValue ToJson() const;
  std::string ToText() const;  // EXPLAIN ANALYZE-style, for --profile

 private:
  struct HistogramBaseline {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, Histogram::kNumBuckets> buckets{};
  };
  struct GaugeBaseline {
    int64_t value = 0;
    int64_t peak = 0;
  };
  struct SpanBaseline {
    uint64_t count = 0;
    uint64_t total_ns = 0;
  };

  // Window descriptor.
  std::string tool_;
  std::string query_class_;
  std::string query_text_;
  uint64_t begin_ns_ = 0;
  uint64_t wall_ns_ = 0;
  bool active_ = false;
  bool collected_ = false;

  // Begin snapshots.
  std::map<std::string, uint64_t> counter_baseline_;
  std::map<std::string, HistogramBaseline> histogram_baseline_;
  std::map<std::string, GaugeBaseline> gauge_baseline_;
  std::map<std::string, SpanBaseline> span_baseline_;

  // Results.
  std::vector<ProfileCounterDelta> counters_;
  std::vector<ProfileHistogramDelta> histograms_;
  std::vector<ProfileGaugeDelta> gauges_;
  std::vector<ProfileSpanDelta> spans_;
  ProfileMemory memory_;

  // Annotations (guarded by mu_: workers flush concurrently).
  mutable std::mutex mu_;
  std::vector<ProfileWorker> workers_;
  std::map<std::string, uint64_t> stats_;
  std::map<std::string, std::string> notes_;
};

// RAII wrapper: Begin at construction, End at destruction.
class ProfileScope {
 public:
  ProfileScope(QueryProfile* profile, std::string tool,
               std::string query_class, std::string query_text)
      : profile_(profile) {
    profile_->Begin(std::move(tool), std::move(query_class),
                    std::move(query_text));
  }
  ~ProfileScope() { profile_->End(); }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  QueryProfile* profile_;
};

}  // namespace obs
}  // namespace rq

#endif  // RQ_OBS_PROFILE_H_

// Minimal zero-dependency JSON document model with a writer and a strict
// parser. Exists so the observability layer can emit and round-trip its
// export schema (docs/OBSERVABILITY.md) without external libraries; it is
// not a general-purpose JSON library (numbers are doubles, no \u escapes
// beyond ASCII passthrough on output).
#ifndef RQ_OBS_JSON_H_
#define RQ_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rq {
namespace obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double value);
  static JsonValue Number(uint64_t value);
  static JsonValue Number(int64_t value);
  static JsonValue String(std::string value);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  uint64_t uint_value() const { return static_cast<uint64_t>(number_); }
  const std::string& string_value() const { return string_; }

  // Array access.
  std::vector<JsonValue>& items() { return items_; }
  const std::vector<JsonValue>& items() const { return items_; }
  void Append(JsonValue value) { items_.push_back(std::move(value)); }

  // Object access (insertion order preserved).
  std::vector<std::pair<std::string, JsonValue>>& members() {
    return members_;
  }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  void Set(std::string key, JsonValue value);
  // nullptr when absent.
  const JsonValue* Find(std::string_view key) const;

  // Serializes; `indent` < 0 means compact single-line output, otherwise
  // pretty-printed with that many spaces per level.
  std::string Dump(int indent = -1) const;

  // Strict parse of a complete JSON document (trailing garbage is an
  // error).
  static Result<JsonValue> Parse(std::string_view text);

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Escapes a string for inclusion in JSON output (without the quotes).
std::string JsonEscape(std::string_view text);

}  // namespace obs
}  // namespace rq

#endif  // RQ_OBS_JSON_H_

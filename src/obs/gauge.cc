#include "obs/gauge.h"

namespace rq {
namespace obs {

GaugeRegistry& GaugeRegistry::Global() {
  static GaugeRegistry* registry = new GaugeRegistry();  // never destroyed
  return *registry;
}

Gauge* GaugeRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    std::string key(name);
    auto gauge = std::unique_ptr<Gauge>(new Gauge(std::string(name)));
    it = gauges_.emplace(std::move(key), std::move(gauge)).first;
  }
  return it->second.get();
}

std::vector<GaugeSample> GaugeRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GaugeSample> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.push_back(GaugeSample{name, gauge->value(), gauge->peak()});
  }
  return out;
}

void GaugeRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, gauge] : gauges_) gauge->Reset();
}

Gauge* GetGauge(std::string_view name) {
  return GaugeRegistry::Global().GetGauge(name);
}

}  // namespace obs
}  // namespace rq

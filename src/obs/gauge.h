// Max-tracking gauges for peak quantities (the observability layer's
// level store; see docs/OBSERVABILITY.md).
//
// A Gauge holds a current level and the peak that level ever reached.
// Unlike counters (monotonic totals) a gauge can go down: subsystems
// either Set() it once per operation (peak automaton sizes — the level is
// the most recent construction, the peak the largest ever) or Add()/Sub()
// deltas around a resource's lifetime (cache bytes in use, batch queue
// depth — the peak is the high-water mark). All mutations are relaxed
// atomics plus a CAS-max, so gauges are safe from any thread and follow
// the flush-per-operation discipline of obs/counters.h.
//
// Naming scheme: `<subsystem>.<noun>` like counters, e.g.
// `fold.peak_states`, `cache.bytes_in_use`. Registered gauges live for
// the process lifetime; handles are stable pointers.
#ifndef RQ_OBS_GAUGE_H_
#define RQ_OBS_GAUGE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rq {
namespace obs {

class Gauge {
 public:
  // Replaces the current level (raising the peak if needed).
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
    RaisePeak(value);
  }

  // Moves the current level by a delta (raising the peak if needed).
  void Add(int64_t delta) {
    int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    RaisePeak(now);
  }
  void Sub(int64_t delta) { Add(-delta); }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  // Zeroes level and peak (per-run bench resets and tests). Not atomic
  // with respect to concurrent mutations.
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class GaugeRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void RaisePeak(int64_t candidate) {
    int64_t seen = peak_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !peak_.compare_exchange_weak(seen, candidate,
                                        std::memory_order_relaxed)) {
    }
  }

  std::string name_;
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> peak_{0};
};

struct GaugeSample {
  std::string name;
  int64_t value = 0;
  int64_t peak = 0;
};

// Process-wide gauge registry, mirroring the counter registry.
class GaugeRegistry {
 public:
  static GaugeRegistry& Global();

  Gauge* GetGauge(std::string_view name);

  // Name-sorted snapshot of all registered gauges.
  std::vector<GaugeSample> Snapshot() const;

  // Zeroes every gauge; gauges stay registered.
  void ResetAll();

 private:
  GaugeRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
};

// Shorthand for GaugeRegistry::Global().GetGauge(name).
Gauge* GetGauge(std::string_view name);

}  // namespace obs
}  // namespace rq

#endif  // RQ_OBS_GAUGE_H_

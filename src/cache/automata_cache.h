// Process-wide content-addressed memoization of the §3 pipeline's expensive
// constructions: regex→NFA compilation, epsilon elimination, the Lemma 3
// fold 2NFA, complementation (subset-construction DFA and Lemma 4 Vardi),
// and whole containment verdicts. Keys are the canonical encodings of
// cache/key.h; stores are the byte-budgeted LRUs of cache/lru.h.
//
// The cache is DISABLED by default: every Cached* helper then falls through
// to a fresh construction, so default behavior (and every existing test) is
// bit-identical to the uncached code. rqcheck --cache and the bench harness
// opt in. Full design notes: docs/CACHING.md.
#ifndef RQ_CACHE_AUTOMATA_CACHE_H_
#define RQ_CACHE_AUTOMATA_CACHE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>

#include "automata/containment.h"
#include "automata/dfa.h"
#include "automata/nfa.h"
#include "cache/lru.h"
#include "common/status.h"
#include "regex/regex.h"
#include "twoway/two_nfa.h"

namespace rq {
namespace cache {

// One LRU store per construction kind, so a burst of one kind (say verdict
// entries) cannot evict another kind wholesale. SetByteBudget splits the
// total evenly across the kinds.
class AutomataCache {
 public:
  static AutomataCache& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Default budget when unset: kDefaultTotalBytes across all kinds.
  void SetByteBudget(size_t total_bytes);
  void Clear();

  LruByteCache<Nfa>& thompson() { return thompson_; }
  LruByteCache<Nfa>& compiled() { return compiled_; }
  LruByteCache<Nfa>& epsfree() { return epsfree_; }
  LruByteCache<TwoNfa>& fold() { return fold_; }
  LruByteCache<Dfa>& complement() { return complement_; }
  LruByteCache<Nfa>& vardi() { return vardi_; }
  LruByteCache<LanguageContainmentResult>& verdict() { return verdict_; }

  static constexpr size_t kDefaultTotalBytes = 64u << 20;
  static constexpr size_t kNumKinds = 7;

 private:
  AutomataCache();

  std::atomic<bool> enabled_{false};
  LruByteCache<Nfa> thompson_;
  LruByteCache<Nfa> compiled_;
  LruByteCache<Nfa> epsfree_;
  LruByteCache<TwoNfa> fold_;
  LruByteCache<Dfa> complement_;
  LruByteCache<Nfa> vardi_;
  LruByteCache<LanguageContainmentResult> verdict_;
};

// Heap-footprint estimates used as the LRU byte charge.
size_t ApproxBytes(const Nfa& nfa);
size_t ApproxBytes(const TwoNfa& m);
size_t ApproxBytes(const Dfa& dfa);
size_t ApproxBytes(const LanguageContainmentResult& result);

// ---- Memoized constructions. Each consults the global cache when enabled
// and otherwise builds fresh; either way the result is immutable and
// shared, so callers can hold it across further cache traffic.

// Thompson construction (Regex::ToNfa).
std::shared_ptr<const Nfa> CachedRegexToNfa(const Regex& regex,
                                            uint32_t num_symbols);

// The fold pipeline's step 1: Thompson → epsilon-free → trimmed →
// simulation-reduced (pathquery/containment.cc).
std::shared_ptr<const Nfa> CachedCompiledNfa(const Regex& regex,
                                             uint32_t num_symbols);

// Epsilon elimination. When `nfa` is already epsilon-free the result is a
// non-owning alias of it, so `nfa` must outlive the returned pointer.
std::shared_ptr<const Nfa> CachedEpsilonFree(const Nfa& nfa);

// Lemma 3 fold 2NFA (twoway/fold.h).
std::shared_ptr<const TwoNfa> CachedFoldTwoNfa(const Nfa& nfa);

// Subset-construction complement DFA (automata/ops.h).
std::shared_ptr<const Dfa> CachedComplementToDfa(const Nfa& nfa);

// Lemma 4 Vardi complement (twoway/complement.h). Only successes are
// cached; a ResourceExhausted verdict is recomputed each time (it is rare
// and deterministic for a given budget).
Result<std::shared_ptr<const Nfa>> CachedVardiComplementNfa(
    const TwoNfa& m, size_t max_states);

// Key for a whole-containment-check verdict. `algo` tags the checker
// ("otf", "antichain", "explicit", "fold") because counterexample shapes
// and explored_states differ across algorithms.
std::string VerdictKey(const char* algo, const Nfa& a, const Nfa& b);

}  // namespace cache
}  // namespace rq

#endif  // RQ_CACHE_AUTOMATA_CACHE_H_

// Canonical byte encodings of regex/automata values, used as the
// content-addressed keys of the memoization layer (docs/CACHING.md).
//
// Two values encode identically iff they are structurally identical up to
// the orderings the encoders canonicalize away: transition lists, epsilon
// lists, and initial-state lists are sorted and deduplicated before
// encoding, so insertion order never splits a key. State *numbering* is not
// canonicalized — isomorphic but differently numbered automata get
// different keys, which only costs extra misses, never correctness.
//
// Keys are full encodings, not digests: equal keys imply equal values, so
// the cache cannot return a wrong entry on a hash collision. StructuralHash
// distills an encoding to 64 bits for diagnostics and cheap fingerprints.
#ifndef RQ_CACHE_KEY_H_
#define RQ_CACHE_KEY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "automata/nfa.h"
#include "regex/regex.h"
#include "twoway/two_nfa.h"

namespace rq {
namespace cache {

// Appends the canonical encoding of a value to `*out`. Each encoding starts
// with a distinct type tag, so keys of different types never collide even
// when concatenated into composite keys.
void AppendEncoding(const Nfa& nfa, std::string* out);
void AppendEncoding(const TwoNfa& m, std::string* out);
void AppendEncoding(const Regex& regex, std::string* out);

// Little-endian scalar appends, for composing keys with extra parameters
// (e.g. a symbol-universe size or a state budget).
void AppendU32(uint32_t value, std::string* out);
void AppendU64(uint64_t value, std::string* out);

template <typename T>
std::string Encode(const T& value) {
  std::string out;
  AppendEncoding(value, &out);
  return out;
}

// splitmix64-mixed FNV over the bytes; stable across platforms.
uint64_t HashBytes(std::string_view bytes);

template <typename T>
uint64_t StructuralHash(const T& value) {
  return HashBytes(Encode(value));
}

}  // namespace cache
}  // namespace rq

#endif  // RQ_CACHE_KEY_H_

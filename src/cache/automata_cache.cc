#include "cache/automata_cache.h"

#include <utility>

#include "automata/ops.h"
#include "automata/reduce.h"
#include "cache/key.h"
#include "common/deadline.h"
#include "twoway/complement.h"
#include "twoway/fold.h"

namespace rq {
namespace cache {

namespace {

constexpr size_t PerKindBudget(size_t total) {
  return total / AutomataCache::kNumKinds;
}

// Non-owning view for inputs that are already in the target form (e.g. an
// epsilon-free NFA passed to CachedEpsilonFree). The caller guarantees the
// referent outlives the pointer.
std::shared_ptr<const Nfa> AliasOf(const Nfa& nfa) {
  return std::shared_ptr<const Nfa>(std::shared_ptr<const Nfa>(), &nfa);
}

std::shared_ptr<const Nfa> Own(Nfa nfa) {
  return std::make_shared<const Nfa>(std::move(nfa));
}

}  // namespace

AutomataCache::AutomataCache()
    : thompson_("nfa", PerKindBudget(kDefaultTotalBytes)),
      compiled_("compiled", PerKindBudget(kDefaultTotalBytes)),
      epsfree_("epsfree", PerKindBudget(kDefaultTotalBytes)),
      fold_("fold", PerKindBudget(kDefaultTotalBytes)),
      complement_("complement", PerKindBudget(kDefaultTotalBytes)),
      vardi_("vardi", PerKindBudget(kDefaultTotalBytes)),
      verdict_("verdict", PerKindBudget(kDefaultTotalBytes)) {}

AutomataCache& AutomataCache::Global() {
  static AutomataCache* instance = new AutomataCache();
  return *instance;
}

void AutomataCache::SetByteBudget(size_t total_bytes) {
  size_t each = PerKindBudget(total_bytes);
  thompson_.set_byte_budget(each);
  compiled_.set_byte_budget(each);
  epsfree_.set_byte_budget(each);
  fold_.set_byte_budget(each);
  complement_.set_byte_budget(each);
  vardi_.set_byte_budget(each);
  verdict_.set_byte_budget(each);
}

void AutomataCache::Clear() {
  thompson_.Clear();
  compiled_.Clear();
  epsfree_.Clear();
  fold_.Clear();
  complement_.Clear();
  vardi_.Clear();
  verdict_.Clear();
}

size_t ApproxBytes(const Nfa& nfa) {
  // Per state: three vector headers plus the accepting bit; per transition
  // {symbol, to}: 8 bytes; per epsilon edge: 4.
  size_t per_state = 3 * sizeof(void*) * 3 + 8;
  size_t epsilons = 0;
  for (uint32_t s = 0; s < nfa.num_states(); ++s) {
    epsilons += nfa.EpsilonsFrom(s).size();
  }
  return sizeof(Nfa) + nfa.num_states() * per_state +
         nfa.CountTransitions() * sizeof(NfaTransition) + epsilons * 4 +
         nfa.initial().size() * 4;
}

size_t ApproxBytes(const TwoNfa& m) {
  size_t per_state = 3 * sizeof(void*) + 8;
  return sizeof(TwoNfa) + m.num_states() * per_state +
         m.CountTransitions() * sizeof(TwoNfaTransition) +
         m.initial().size() * 4;
}

size_t ApproxBytes(const Dfa& dfa) {
  return sizeof(Dfa) +
         static_cast<size_t>(dfa.num_states()) * dfa.num_symbols() * 4 +
         dfa.num_states() / 8;
}

size_t ApproxBytes(const LanguageContainmentResult& result) {
  return sizeof(LanguageContainmentResult) +
         result.counterexample.size() * sizeof(Symbol);
}

std::shared_ptr<const Nfa> CachedRegexToNfa(const Regex& regex,
                                            uint32_t num_symbols) {
  AutomataCache& cache = AutomataCache::Global();
  if (!cache.enabled()) return Own(regex.ToNfa(num_symbols));
  std::string key;
  AppendU32(num_symbols, &key);
  AppendEncoding(regex, &key);
  if (auto hit = cache.thompson().Get(key)) return hit;
  Nfa nfa = regex.ToNfa(num_symbols);
  size_t bytes = ApproxBytes(nfa);
  return cache.thompson().Put(std::move(key), std::move(nfa), bytes);
}

std::shared_ptr<const Nfa> CachedCompiledNfa(const Regex& regex,
                                             uint32_t num_symbols) {
  AutomataCache& cache = AutomataCache::Global();
  auto build = [&] {
    return ReduceBySimulation(
        regex.ToNfa(num_symbols).WithoutEpsilons().Trimmed());
  };
  if (!cache.enabled()) return Own(build());
  std::string key;
  AppendU32(num_symbols, &key);
  AppendEncoding(regex, &key);
  if (auto hit = cache.compiled().Get(key)) return hit;
  Nfa nfa = build();
  size_t bytes = ApproxBytes(nfa);
  return cache.compiled().Put(std::move(key), std::move(nfa), bytes);
}

std::shared_ptr<const Nfa> CachedEpsilonFree(const Nfa& nfa) {
  if (!nfa.HasEpsilons()) return AliasOf(nfa);
  AutomataCache& cache = AutomataCache::Global();
  if (!cache.enabled()) return Own(nfa.WithoutEpsilons());
  std::string key = Encode(nfa);
  if (auto hit = cache.epsfree().Get(key)) return hit;
  Nfa out = nfa.WithoutEpsilons();
  size_t bytes = ApproxBytes(out);
  return cache.epsfree().Put(std::move(key), std::move(out), bytes);
}

std::shared_ptr<const TwoNfa> CachedFoldTwoNfa(const Nfa& nfa) {
  AutomataCache& cache = AutomataCache::Global();
  if (!cache.enabled()) {
    return std::make_shared<const TwoNfa>(FoldTwoNfa(nfa));
  }
  std::string key = Encode(nfa);
  if (auto hit = cache.fold().Get(key)) return hit;
  TwoNfa fold = FoldTwoNfa(nfa);
  // A construction cut short by deadline/cancellation is truncated; hand
  // it back (the caller polls the context and discards it) but never let
  // it into the cache under the full automaton's key.
  if (ExecStopRequested()) {
    return std::make_shared<const TwoNfa>(std::move(fold));
  }
  size_t bytes = ApproxBytes(fold);
  return cache.fold().Put(std::move(key), std::move(fold), bytes);
}

std::shared_ptr<const Dfa> CachedComplementToDfa(const Nfa& nfa) {
  AutomataCache& cache = AutomataCache::Global();
  if (!cache.enabled()) {
    return std::make_shared<const Dfa>(ComplementToDfa(nfa));
  }
  std::string key = Encode(nfa);
  if (auto hit = cache.complement().Get(key)) return hit;
  Dfa dfa = ComplementToDfa(nfa);
  if (ExecStopRequested()) {
    return std::make_shared<const Dfa>(std::move(dfa));
  }
  size_t bytes = ApproxBytes(dfa);
  return cache.complement().Put(std::move(key), std::move(dfa), bytes);
}

Result<std::shared_ptr<const Nfa>> CachedVardiComplementNfa(
    const TwoNfa& m, size_t max_states) {
  AutomataCache& cache = AutomataCache::Global();
  if (!cache.enabled()) {
    RQ_ASSIGN_OR_RETURN(Nfa out, VardiComplementNfa(m, max_states));
    return Own(std::move(out));
  }
  std::string key;
  AppendU64(max_states, &key);
  AppendEncoding(m, &key);
  if (auto hit = cache.vardi().Get(key)) return hit;
  RQ_ASSIGN_OR_RETURN(Nfa out, VardiComplementNfa(m, max_states));
  size_t bytes = ApproxBytes(out);
  return cache.vardi().Put(std::move(key), std::move(out), bytes);
}

std::string VerdictKey(const char* algo, const Nfa& a, const Nfa& b) {
  std::string key = algo;
  key.push_back('|');
  AppendEncoding(a, &key);
  AppendEncoding(b, &key);
  return key;
}

}  // namespace cache
}  // namespace rq

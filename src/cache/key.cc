#include "cache/key.h"

#include <algorithm>
#include <vector>

namespace rq {
namespace cache {

namespace {

void AppendU8(uint8_t value, std::string* out) {
  out->push_back(static_cast<char>(value));
}

void AppendSortedU32s(std::vector<uint32_t> values, std::string* out) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  AppendU32(static_cast<uint32_t>(values.size()), out);
  for (uint32_t v : values) AppendU32(v, out);
}

void AppendRegexNode(const Regex& regex, std::string* out) {
  AppendU8(static_cast<uint8_t>(regex.kind()), out);
  if (regex.kind() == RegexKind::kAtom) {
    AppendU32(regex.symbol(), out);
    return;
  }
  // Child order is semantic for concat and cheap to keep for the rest; no
  // reordering, so the encoding is a plain preorder walk.
  AppendU32(static_cast<uint32_t>(regex.children().size()), out);
  for (const RegexPtr& child : regex.children()) {
    AppendRegexNode(*child, out);
  }
}

}  // namespace

void AppendU32(uint32_t value, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendU64(uint64_t value, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendEncoding(const Nfa& nfa, std::string* out) {
  AppendU8('N', out);
  AppendU32(nfa.num_symbols(), out);
  AppendU32(nfa.num_states(), out);
  AppendSortedU32s(nfa.initial(), out);
  for (uint32_t s = 0; s < nfa.num_states(); ++s) {
    AppendU8(nfa.IsAccepting(s) ? 1 : 0, out);
  }
  for (uint32_t s = 0; s < nfa.num_states(); ++s) {
    std::vector<NfaTransition> trans = nfa.TransitionsFrom(s);
    std::sort(trans.begin(), trans.end(),
              [](const NfaTransition& a, const NfaTransition& b) {
                return a.symbol != b.symbol ? a.symbol < b.symbol
                                            : a.to < b.to;
              });
    trans.erase(std::unique(trans.begin(), trans.end()), trans.end());
    AppendU32(static_cast<uint32_t>(trans.size()), out);
    for (const NfaTransition& t : trans) {
      AppendU32(t.symbol, out);
      AppendU32(t.to, out);
    }
    AppendSortedU32s(nfa.EpsilonsFrom(s), out);
  }
}

void AppendEncoding(const TwoNfa& m, std::string* out) {
  AppendU8('2', out);
  AppendU32(m.num_symbols(), out);
  AppendU32(m.num_states(), out);
  AppendSortedU32s(m.initial(), out);
  for (uint32_t s = 0; s < m.num_states(); ++s) {
    AppendU8(m.IsAccepting(s) ? 1 : 0, out);
  }
  for (uint32_t s = 0; s < m.num_states(); ++s) {
    std::vector<TwoNfaTransition> trans = m.TransitionsFrom(s);
    std::sort(trans.begin(), trans.end(),
              [](const TwoNfaTransition& a, const TwoNfaTransition& b) {
                if (a.symbol != b.symbol) return a.symbol < b.symbol;
                if (a.to != b.to) return a.to < b.to;
                return a.dir < b.dir;
              });
    trans.erase(std::unique(trans.begin(), trans.end(),
                            [](const TwoNfaTransition& a,
                               const TwoNfaTransition& b) {
                              return a.symbol == b.symbol && a.to == b.to &&
                                     a.dir == b.dir;
                            }),
                trans.end());
    AppendU32(static_cast<uint32_t>(trans.size()), out);
    for (const TwoNfaTransition& t : trans) {
      AppendU32(t.symbol, out);
      AppendU32(t.to, out);
      AppendU8(static_cast<uint8_t>(static_cast<int8_t>(t.dir) + 1), out);
    }
  }
}

void AppendEncoding(const Regex& regex, std::string* out) {
  AppendU8('R', out);
  AppendRegexNode(regex, out);
}

uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ULL;
  }
  // splitmix64 finalizer so short keys still spread over the whole range.
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace cache
}  // namespace rq

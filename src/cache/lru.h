// A byte-budgeted LRU map from canonical-encoding keys (cache/key.h) to
// immutable shared values. One instance per construction kind; the global
// instances live in cache/automata_cache.h. See docs/CACHING.md.
#ifndef RQ_CACHE_LRU_H_
#define RQ_CACHE_LRU_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/mem.h"
#include "obs/subsystems.h"

namespace rq {
namespace cache {

// Thread-safe: one mutex per cache guards the recency list and index.
// Values are handed out as shared_ptr<const V>, so a hit is zero-copy and
// an entry evicted while a reader still holds it stays alive until the
// reader drops it. Each Get/Put bumps both the per-kind counters
// (`cache.<kind>_hits` etc.) and the cross-kind aggregates in
// obs::CacheCounters.
template <typename V>
class LruByteCache {
 public:
  LruByteCache(std::string kind, size_t byte_budget)
      : kind_(std::move(kind)),
        byte_budget_(byte_budget),
        hits_(*obs::GetCounter("cache." + kind_ + "_hits")),
        misses_(*obs::GetCounter("cache." + kind_ + "_misses")),
        evictions_(*obs::GetCounter("cache." + kind_ + "_evictions")),
        oversized_(*obs::GetCounter("cache." + kind_ + "_oversized")) {}

  LruByteCache(const LruByteCache&) = delete;
  LruByteCache& operator=(const LruByteCache&) = delete;

  const std::string& kind() const { return kind_; }

  // Returns the cached value (promoting it to most-recent) or null.
  std::shared_ptr<const V> Get(std::string_view key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      misses_.Increment();
      obs::CacheCounters::Get().misses.Increment();
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    hits_.Increment();
    obs::CacheCounters::Get().hits.Increment();
    return it->second->value;
  }

  // Inserts `value` under `key` and returns the stored pointer. If another
  // thread inserted the same key first, the existing entry wins (both
  // threads computed the same value, so sharing the first is sound).
  // `value_bytes` is the caller's estimate of the value's heap footprint.
  // A value too large to ever fit the budget is handed back uncached —
  // inserting it would only evict every resident entry before being
  // evicted itself.
  std::shared_ptr<const V> Put(std::string key, V value, size_t value_bytes) {
    auto stored = std::make_shared<const V>(std::move(value));
    size_t entry_bytes = value_bytes + key.size() + kEntryOverhead;
    std::lock_guard<std::mutex> lock(mu_);
    if (entry_bytes > byte_budget_) {
      oversized_.Increment();
      return stored;
    }
    auto it = index_.find(std::string_view(key));
    if (it != index_.end()) {
      // Duplicate key: another thread computed (and inserted) the same
      // value first. The resident entry is handed back, which is a cache
      // hit from the caller's perspective — count it as one so the
      // per-kind hit/miss/insert counters keep summing to the number of
      // cache operations.
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_.Increment();
      obs::CacheCounters::Get().hits.Increment();
      return it->second->value;
    }
    lru_.push_front(Entry{std::move(key), stored, entry_bytes});
    index_.emplace(std::string_view(lru_.front().key), lru_.begin());
    bytes_ += entry_bytes;
    obs::CacheCounters::Get().inserts.Increment();
    obs::CacheCounters::Get().bytes_in_use.Add(
        static_cast<int64_t>(entry_bytes));
    // Entries outlive queries: a durable mem.cache_bytes charge (the same
    // canonical-encoding size estimate the budget uses), released on
    // eviction/Clear. Never counts against the inserting query's budget.
    MemChargeDurable(MemSubsystem::kCache,
                     static_cast<int64_t>(entry_bytes));
    while (bytes_ > byte_budget_ && !lru_.empty()) {
      EvictBackLocked();
    }
    return stored;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    index_.clear();
    lru_.clear();
    obs::CacheCounters::Get().bytes_in_use.Sub(static_cast<int64_t>(bytes_));
    MemReleaseDurable(MemSubsystem::kCache, static_cast<int64_t>(bytes_));
    bytes_ = 0;
  }

  void set_byte_budget(size_t byte_budget) {
    std::lock_guard<std::mutex> lock(mu_);
    byte_budget_ = byte_budget;
    while (bytes_ > byte_budget_ && !lru_.empty()) {
      EvictBackLocked();
    }
  }

  size_t bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }
  size_t entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }

 private:
  // Rough per-entry bookkeeping cost (list node, index slot, shared_ptr
  // control block) counted against the budget alongside key and value.
  static constexpr size_t kEntryOverhead = 96;

  struct Entry {
    std::string key;
    std::shared_ptr<const V> value;
    size_t bytes;
  };

  void EvictBackLocked() {
    Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    obs::CacheCounters::Get().bytes_in_use.Sub(
        static_cast<int64_t>(victim.bytes));
    MemReleaseDurable(MemSubsystem::kCache,
                      static_cast<int64_t>(victim.bytes));
    index_.erase(std::string_view(victim.key));
    lru_.pop_back();
    evictions_.Increment();
    obs::CacheCounters::Get().evictions.Increment();
  }

  const std::string kind_;
  mutable std::mutex mu_;
  size_t byte_budget_;
  size_t bytes_ = 0;
  // Most-recent at the front. The index's string_view keys point into the
  // list entries' strings, which are stable across splices.
  std::list<Entry> lru_;
  std::unordered_map<std::string_view,
                     typename std::list<Entry>::iterator>
      index_;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;
  obs::Counter& oversized_;
};

}  // namespace cache
}  // namespace rq

#endif  // RQ_CACHE_LRU_H_

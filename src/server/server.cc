#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/prometheus.h"
#include "obs/subsystems.h"

namespace rq {
namespace server {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Clips an optional request value to an optional server cap; 0 = unset on
// both sides.
int64_t ClipToCap(int64_t requested, int64_t fallback, int64_t cap) {
  int64_t value = requested > 0 ? requested : fallback;
  if (cap > 0) value = value > 0 ? std::min(value, cap) : cap;
  return value;
}

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

QueryServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

QueryServer::QueryServer(ServerOptions options)
    : options_(std::move(options)),
      store_(GraphStoreOptions{options_.incr_delta_budget,
                               options_.eval_cache_bytes}) {
  if (options_.workers == 0) options_.workers = 1;
}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  RQ_CHECK(state_.load() == State::kIdle);

  // Seed the versioned graph store before any worker exists: epoch 1 is a
  // frozen copy of the preloaded graph (CSR snapshot + relational image),
  // shared read-only by every request pinned to it. Update batches publish
  // later epochs; requests keep the version they were admitted against.
  if (options_.graph != nullptr) {
    store_.Load(*options_.graph);
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return InternalError(std::string("socket: ") + ::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    CloseFd(listen_fd_);
    return InvalidArgumentError("bad bind address '" + options_.bind_address +
                                "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = InternalError(std::string("bind ") +
                                  options_.bind_address + ": " +
                                  ::strerror(errno));
    CloseFd(listen_fd_);
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status status = InternalError(std::string("listen: ") + ::strerror(errno));
    CloseFd(listen_fd_);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  if (::pipe(wake_pipe_) < 0) {
    Status status = InternalError(std::string("pipe: ") + ::strerror(errno));
    CloseFd(listen_fd_);
    return status;
  }

  state_.store(State::kServing);
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void QueryServer::BeginDrain() {
  State expected = State::kServing;
  if (!state_.compare_exchange_strong(expected, State::kDraining)) return;
  // Wake the accept loop's poll and any idle workers so both observe the
  // state change.
  char byte = 1;
  ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  (void)ignored;
  queue_cv_.notify_all();
}

void QueryServer::Wait() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (joined_) return;
  if (state_.load() == State::kIdle) {
    joined_ = true;
    state_.store(State::kStopped);
    return;
  }

  if (accept_thread_.joinable()) accept_thread_.join();
  // Workers exit once the queue is empty under drain, which (readers shed
  // new work during drain) means every admitted request has completed and
  // its response been written.
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  // In-flight work is done: unblock every reader still parked in recv and
  // join the connection threads.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_) {
      conn->closed.store(true);
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  std::unordered_map<uint64_t, std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (auto& [id, thread] : threads) {
    if (thread.joinable()) thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
    finished_conn_ids_.clear();
  }
  CloseFd(wake_pipe_[0]);
  CloseFd(wake_pipe_[1]);

  if (!options_.flight_dump_path.empty()) {
    obs::WriteFlightDump(options_.flight_dump_path);  // best-effort flush
  }
  obs::ServerCounters::Get().drained.Increment();
  state_.store(State::kStopped);
  joined_ = true;
}

void QueryServer::DrainAndWait() {
  BeginDrain();
  Wait();
}

void QueryServer::Stop() {
  BeginDrain();
  cancel_.Cancel();
  Wait();
}

size_t QueryServer::active_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

size_t QueryServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

void QueryServer::ReapFinishedConnections() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (uint64_t id : finished_conn_ids_) {
      auto it = conn_threads_.find(id);
      if (it == conn_threads_.end()) continue;
      finished.push_back(std::move(it->second));
      conn_threads_.erase(it);
    }
    finished_conn_ids_.clear();
  }
  for (std::thread& thread : finished) {
    if (thread.joinable()) thread.join();
  }
}

void QueryServer::AcceptLoop() {
  auto& counters = obs::ServerCounters::Get();
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 || state_.load() != State::kServing) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN) {
        continue;
      }
      break;
    }
    ReapFinishedConnections();
    if (state_.load() != State::kServing) {
      ::close(fd);  // late connect during drain: refuse
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.size() >= options_.max_connections) {
        counters.shed.Increment();
        ::close(fd);
        continue;
      }
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    counters.connections.Increment();
    counters.active_connections.Add(1);
    std::lock_guard<std::mutex> lock(conns_mu_);
    uint64_t id = next_conn_id_++;
    conns_[id] = conn;
    conn_threads_[id] = std::thread(
        [this, conn, id]() mutable { ConnectionLoop(std::move(conn), id); });
  }
  CloseFd(listen_fd_);
}

void QueryServer::ConnectionLoop(ConnPtr conn, uint64_t conn_id) {
  // The first bytes decide the dialect: "GET " means a plain HTTP scrape
  // (one request, then close), anything else the framed protocol.
  char peek[4];
  ssize_t got;
  do {
    got = ::recv(conn->fd, peek, sizeof(peek), MSG_PEEK | MSG_WAITALL);
  } while (got < 0 && errno == EINTR);
  if (got == static_cast<ssize_t>(sizeof(peek))) {
    if (std::memcmp(peek, "GET ", 4) == 0) {
      ServeHttp(conn);
    } else {
      HandleFrames(conn);
    }
  }
  conn->closed.store(true);
  ::shutdown(conn->fd, SHUT_RDWR);
  obs::ServerCounters::Get().active_connections.Add(-1);
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn_id);
  finished_conn_ids_.push_back(conn_id);
}

void QueryServer::ServeHttp(const ConnPtr& conn) {
  auto& counters = obs::ServerCounters::Get();
  std::string request_text;
  char buffer[1024];
  while (request_text.find("\r\n\r\n") == std::string::npos &&
         request_text.size() < 8192) {
    ssize_t got = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return;
    request_text.append(buffer, static_cast<size_t>(got));
  }
  size_t path_start = request_text.find(' ');
  size_t path_end = path_start == std::string::npos
                        ? std::string::npos
                        : request_text.find(' ', path_start + 1);
  if (path_end == std::string::npos) return;
  std::string path =
      request_text.substr(path_start + 1, path_end - path_start - 1);

  std::string status_line = "200 OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (path == "/metrics") {
    counters.metrics_scrapes.Increment();
    body = obs::RenderPrometheusText();
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/healthz") {
    body = draining() ? "draining\n" : "ok\n";
  } else {
    status_line = "404 Not Found";
    body = "not found\n";
  }
  std::string response = "HTTP/1.0 " + status_line +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  WriteRaw(conn->fd, response);
}

obs::JsonValue QueryServer::HealthResponse(const obs::JsonValue& id) {
  obs::JsonValue response = OkResponse(id);
  const char* state = "serving";
  switch (state_.load()) {
    case State::kIdle:
      state = "idle";
      break;
    case State::kServing:
      state = "serving";
      break;
    case State::kDraining:
      state = "draining";
      break;
    case State::kStopped:
      state = "stopped";
      break;
  }
  response.Set("state", obs::JsonValue::String(state));
  response.Set("queue_depth", obs::JsonValue::Number(
                                  static_cast<uint64_t>(queue_depth())));
  response.Set("inflight_requests",
               obs::JsonValue::Number(
                   static_cast<uint64_t>(inflight_.load())));
  response.Set("active_connections",
               obs::JsonValue::Number(
                   static_cast<uint64_t>(active_connections())));
  response.Set("inflight_bytes",
               obs::JsonValue::Number(server_pot_.total_bytes()));
  response.Set("workers", obs::JsonValue::Number(
                              static_cast<uint64_t>(options_.workers)));
  return response;
}

void QueryServer::HandleFrames(const ConnPtr& conn) {
  auto& counters = obs::ServerCounters::Get();
  std::string payload;
  for (;;) {
    bool clean_eof = false;
    Status read_status = ReadFrame(conn->fd, &payload, &clean_eof);
    if (!read_status.ok() || clean_eof) break;
    counters.requests.Increment();

    Result<Request> parsed = ParseRequest(payload);
    if (!parsed.ok()) {
      WriteResponse(conn, ErrorResponse(obs::JsonValue::Null(),
                                        "invalid_request",
                                        parsed.status().message()));
      continue;
    }
    Request request = std::move(parsed).value();

    // Health is answered inline by the reader: a liveness probe must keep
    // working while the queue is saturated or draining.
    if (request.type == RequestType::kHealth) {
      WriteResponse(conn, HealthResponse(request.id));
      continue;
    }
    if (request.type == RequestType::kStats) {
      obs::JsonValue response = OkResponse(request.id);
      response.Set("stats", obs::SnapshotJson());
      WriteResponse(conn, response);
      continue;
    }

    // Updates are applied INLINE by this reader (serialized across
    // connections by the store's writer mutex): a connection's frames are
    // handled in arrival order, so an eval pipelined after an update on
    // the same connection is admitted after the new epoch published and
    // reads its own write. Evals admitted BEFORE this point already
    // pinned their view and are unaffected.
    if (request.type == RequestType::kUpdate) {
      if (state_.load() != State::kServing) {
        WriteResponse(conn, ErrorResponse(request.id, "draining",
                                          "server is draining"));
        continue;
      }
      if (!options_.enable_updates) {
        WriteResponse(conn,
                      ErrorResponse(request.id, "invalid_request",
                                    "updates are disabled (rqserved "
                                    "--read-only)"));
        continue;
      }
      WriteResponse(conn, ExecuteUpdate(request));
      continue;
    }

    // Admission control, under the queue lock so the draining check and
    // the enqueue are atomic with respect to worker shutdown: once a
    // worker has observed (draining && queue empty) and exited, no reader
    // can slip another job in.
    const char* shed_reason = nullptr;
    bool is_draining = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (state_.load() != State::kServing) {
        is_draining = true;
      } else if (queue_.size() >= options_.max_queue_depth) {
        shed_reason = "request queue full";
      } else if (options_.max_inflight_bytes > 0 &&
                 server_pot_.total_bytes() > options_.max_inflight_bytes) {
        shed_reason = "in-flight request memory over threshold";
      } else {
        Job job{conn, std::move(request), GraphView{}, NowNanos()};
        // Pin the graph version at admission: however long the job waits
        // behind later updates, it evaluates against this view.
        if (job.request.type == RequestType::kEval &&
            job.request.graph.empty()) {
          job.view = store_.Acquire();
        }
        queue_.push_back(std::move(job));
        counters.queue_depth.Set(static_cast<int64_t>(queue_.size()));
      }
    }
    if (is_draining) {
      WriteResponse(conn, ErrorResponse(request.id, "draining",
                                        "server is draining"));
      continue;
    }
    if (shed_reason != nullptr) {
      counters.shed.Increment();
      WriteResponse(conn,
                    ErrorResponse(request.id, "overloaded", shed_reason));
      continue;
    }
    queue_cv_.notify_one();
  }
}

void QueryServer::WorkerLoop() {
  auto& counters = obs::ServerCounters::Get();
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || state_.load() != State::kServing;
      });
      if (queue_.empty()) {
        if (state_.load() != State::kServing) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      counters.queue_depth.Set(static_cast<int64_t>(queue_.size()));
    }
    inflight_.fetch_add(1);
    counters.inflight_requests.Add(1);
    counters.queue_wait_ns.Record(NowNanos() - job.enqueue_ns);
    ExecuteJob(job);
    inflight_.fetch_sub(1);
    counters.inflight_requests.Add(-1);
  }
}

void QueryServer::ExecuteJob(Job& job) {
  auto& counters = obs::ServerCounters::Get();
  int64_t timeout_ms =
      ClipToCap(job.request.timeout_ms, options_.default_timeout_ms,
                options_.max_timeout_ms);
  int64_t budget_mb =
      ClipToCap(job.request.memory_budget_mb,
                options_.default_memory_budget_mb,
                options_.max_memory_budget_mb);

  uint64_t start_ns = NowNanos();
  obs::JsonValue response;
  // The per-request budget chains to the server-wide pot: every charge the
  // handler makes also lands there, which is what the admission
  // controller's in-flight byte threshold reads.
  MemContext mem_ctx(budget_mb > 0
                         ? static_cast<uint64_t>(budget_mb) * 1024 * 1024
                         : 0,
                     &server_pot_);
  {
    ExecContext exec_ctx(timeout_ms > 0 ? Deadline::AfterMillis(timeout_ms)
                                        : Deadline::Infinite(),
                         &cancel_);
    ScopedExecContext scoped_exec(&exec_ctx);
    ScopedMemContext scoped_mem(&mem_ctx);
    HandlerContext ctx;
    ctx.view = std::move(job.view);
    ctx.store = &store_;
    ctx.enable_sleep = options_.enable_sleep;
    response = ExecuteRequest(job.request, ctx);
  }
  // Same precedence rqcheck's exit codes pin down (docs/ROBUSTNESS.md
  // "Which error wins"): when both the deadline and the byte budget
  // tripped, the request failed for memory.
  const obs::JsonValue* error = response.Find("error");
  if (error != nullptr &&
      error->kind() == obs::JsonValue::Kind::kString &&
      error->string_value() == "deadline_exceeded" && mem_ctx.exceeded()) {
    response = ErrorResponse(job.request.id, "resource_exhausted",
                             "memory budget exceeded (deadline also expired)");
  }
  WriteResponse(job.conn, response);
  counters.request_latency_ns.Record(NowNanos() - start_ns);
}

obs::JsonValue QueryServer::ExecuteUpdate(const Request& request) {
  auto& counters = obs::ServerCounters::Get();
  int64_t timeout_ms =
      ClipToCap(request.timeout_ms, options_.default_timeout_ms,
                options_.max_timeout_ms);
  int64_t budget_mb =
      ClipToCap(request.memory_budget_mb, options_.default_memory_budget_mb,
                options_.max_memory_budget_mb);
  uint64_t start_ns = NowNanos();
  Result<GraphStore::UpdateResult> applied = [&] {
    // Same resource envelope as worker-side requests: the incremental
    // closure maintenance inside Apply polls this context, and its
    // transient charges land in the server-wide pot.
    MemContext mem_ctx(budget_mb > 0
                           ? static_cast<uint64_t>(budget_mb) * 1024 * 1024
                           : 0,
                       &server_pot_);
    ExecContext exec_ctx(timeout_ms > 0 ? Deadline::AfterMillis(timeout_ms)
                                        : Deadline::Infinite(),
                         &cancel_);
    ScopedExecContext scoped_exec(&exec_ctx);
    ScopedMemContext scoped_mem(&mem_ctx);
    return store_.Apply(request.ops);
  }();
  obs::JsonValue response;
  if (!applied.ok()) {
    response = ErrorResponse(request.id, ErrorCodeForStatus(applied.status()),
                             applied.status().message());
    response.Set("epoch", obs::JsonValue::Number(store_.epoch()));
  } else {
    response = OkResponse(request.id);
    response.Set("epoch", obs::JsonValue::Number(applied->epoch));
    response.Set("nodes_added",
                 obs::JsonValue::Number(
                     static_cast<uint64_t>(applied->nodes_added)));
    response.Set("edges_added",
                 obs::JsonValue::Number(
                     static_cast<uint64_t>(applied->edges_added)));
    response.Set("closure_pairs",
                 obs::JsonValue::Number(
                     static_cast<uint64_t>(applied->closure_pairs)));
  }
  counters.request_latency_ns.Record(NowNanos() - start_ns);
  return response;
}

void QueryServer::WriteResponse(const ConnPtr& conn,
                                const obs::JsonValue& response) {
  auto& counters = obs::ServerCounters::Get();
  const obs::JsonValue* ok = response.Find("ok");
  if (ok != nullptr && ok->kind() == obs::JsonValue::Kind::kBool &&
      !ok->bool_value()) {
    counters.errors.Increment();
  }
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed.load()) return;
  if (WriteFrame(conn->fd, response.Dump()).ok()) {
    counters.responses.Increment();
  }
}

}  // namespace server
}  // namespace rq

#include "server/graph_store.h"

#include <chrono>
#include <utility>

#include "cache/key.h"
#include "common/deadline.h"
#include "obs/subsystems.h"
#include "rq/eval.h"

namespace rq {
namespace server {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

GraphStore::GraphStore(GraphStoreOptions options)
    : options_(options), closures_(options.incr_delta_budget) {
  // Epoch 0: no graph yet. Evals against this view report "no graph"
  // until a Load() or the first update batch publishes epoch 1.
  view_ = std::make_shared<const GraphView>();
  if (options_.eval_cache_bytes > 0) {
    eval_cache_.emplace("eval", options_.eval_cache_bytes);
  }
}

void GraphStore::Load(const GraphDb& graph) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  master_ = graph;
  ++epoch_;
  PublishLocked();
}

GraphView GraphStore::Acquire() const {
  std::lock_guard<std::mutex> lock(view_mu_);
  return *view_;
}

uint64_t GraphStore::epoch() const {
  std::lock_guard<std::mutex> lock(view_mu_);
  return view_->epoch;
}

void GraphStore::PublishLocked() {
  uint64_t start_ns = NowNanos();
  auto view = std::make_shared<GraphView>();
  view->epoch = epoch_;
  // The published graph is a frozen COPY of the master: later Apply()
  // batches mutate the master freely while admitted requests keep reading
  // this version (the aliasing contract in graph/graph_db.h makes the
  // snapshot safe even against the master itself, but the relational image
  // and NodeName rendering need a stable GraphDb too).
  auto frozen = std::make_shared<const GraphDb>(master_);
  view->graph = frozen;
  view->snapshot = frozen->Snapshot();
  view->database = std::make_shared<const Database>(GraphToDatabase(*frozen));
  {
    auto closures = std::make_shared<ClosureMap>();
    for (const auto& [label, image] : closure_images_) {
      closures->emplace(label, image);
    }
    view->closures = std::move(closures);
  }
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    view_ = std::move(view);
  }
  auto& counters = obs::GraphEvalCounters::Get();
  counters.epoch.Set(static_cast<int64_t>(epoch_));
  counters.rebuild_ns.Record(NowNanos() - start_ns);
}

Result<GraphStore::UpdateResult> GraphStore::Apply(
    const std::vector<UpdateOp>& ops) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  UpdateResult result;
  if (ops.empty()) {
    result.epoch = epoch_;
    return result;
  }
  auto& counters = obs::GraphEvalCounters::Get();
  size_t nodes_before = master_.num_nodes();
  Status failure = Status::Ok();
  size_t applied = 0;
  std::vector<uint32_t> touched_labels;
  for (const UpdateOp& op : ops) {
    if (Status s = CheckExecContext(); !s.ok()) {
      failure = s;
      break;
    }
    switch (op.kind) {
      case UpdateOp::Kind::kAddNode:
        if (op.name.empty()) {
          master_.AddNode();
        } else {
          master_.AddNamedNode(op.name);
        }
        break;
      case UpdateOp::Kind::kAddEdge: {
        NodeId src = master_.AddNamedNode(op.src);
        NodeId dst = master_.AddNamedNode(op.dst);
        uint32_t label = master_.alphabet().InternLabel(op.label);
        master_.AddEdge(src, label, dst);
        ++result.edges_added;
        touched_labels.push_back(label);
        // Maintain the label's closure from the delta. Over-budget demotes
        // the label inside PerLabelClosure (counted in incr.fallbacks) and
        // is not a batch failure; a resource trip aborts the batch — the
        // prefix applied so far still publishes below, so the master and
        // the served view never diverge silently.
        Result<size_t> pairs = closures_.AddEdge(label, src, dst);
        if (!pairs.ok()) {
          failure = pairs.status();
        } else {
          result.closure_pairs += *pairs;
        }
        break;
      }
    }
    if (!failure.ok()) break;
    ++applied;
  }
  // Refresh the immutable closure images for every label the batch
  // touched: a demoted label's image is dropped, a maintained one is
  // re-copied (one deep copy per touched label per BATCH, not per edge).
  for (uint32_t label : touched_labels) {
    const Relation* maintained = closures_.closure(label);
    if (maintained == nullptr) {
      closure_images_.erase(label);
    } else {
      closure_images_[label] = std::make_shared<const Relation>(*maintained);
    }
  }
  if (applied > 0 || failure.ok()) {
    ++epoch_;
    counters.mutations.Add(applied);
    PublishLocked();
  }
  result.epoch = epoch_;
  result.nodes_added = master_.num_nodes() - nodes_before;
  if (!failure.ok()) return failure;
  return result;
}

void GraphStore::SeedClosure(const GraphView& view, uint32_t label,
                             Relation base, Relation closure) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  // A seed computed from an older epoch may be missing edges that landed
  // since; accepting it would serve stale answers forever. Drop it — the
  // next closure-shaped eval against the current epoch will re-seed.
  if (view.epoch != epoch_ || epoch_ == 0) return;
  closures_.Seed(label, std::move(base), std::move(closure));
  closure_images_[label] =
      std::make_shared<const Relation>(*closures_.closure(label));
  // Republish the closure map at the SAME epoch: the graph is unchanged,
  // so requests already pinned to this epoch may keep their view, and new
  // admissions pick up the maintained closure without a version bump.
  auto current = [&] {
    std::lock_guard<std::mutex> view_lock(view_mu_);
    return view_;
  }();
  auto updated = std::make_shared<GraphView>(*current);
  auto closures = std::make_shared<ClosureMap>(closure_images_);
  updated->closures = std::move(closures);
  std::lock_guard<std::mutex> view_lock(view_mu_);
  view_ = std::move(updated);
}

std::shared_ptr<const Relation> GraphStore::LookupEval(std::string_view key) {
  if (!eval_cache_.has_value()) return nullptr;
  return eval_cache_->Get(key);
}

std::shared_ptr<const Relation> GraphStore::StoreEval(std::string key,
                                                      Relation answer) {
  size_t bytes = answer.size() * kApproxClosurePairBytes;
  if (!eval_cache_.has_value()) {
    return std::make_shared<const Relation>(std::move(answer));
  }
  return eval_cache_->Put(std::move(key), std::move(answer), bytes);
}

std::string GraphStore::EvalCacheKey(uint64_t epoch, std::string_view cls,
                                     std::string_view query) {
  std::string key;
  cache::AppendU64(epoch, &key);
  key.append(cls);
  key.push_back('\0');
  key.append(query);
  return key;
}

}  // namespace server
}  // namespace rq

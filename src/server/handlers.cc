#include "server/handlers.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "automata/alphabet.h"
#include "common/deadline.h"
#include "common/status.h"
#include "containment/batch.h"
#include "containment/containment.h"
#include "crpq/crpq.h"
#include "datalog/eval.h"
#include "obs/export.h"
#include "obs/profile.h"
#include "obs/subsystems.h"
#include "pathquery/containment.h"
#include "pathquery/path_query.h"
#include "relational/cq.h"
#include "rq/equivalence.h"
#include "rq/eval.h"
#include "rq/parser.h"

namespace rq {
namespace server {

namespace {

obs::JsonValue StatusError(const obs::JsonValue& id, const Status& status) {
  return ErrorResponse(id, ErrorCodeForStatus(status), status.message());
}

// Renders one path-containment verdict (shared by the containment handler
// and each direction of an rpq/2rpq equivalence check).
obs::JsonValue RenderPathVerdict(const PathContainmentResult& result,
                                 const Alphabet& alphabet) {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("contained", obs::JsonValue::Bool(result.contained));
  out.Set("pipeline", obs::JsonValue::String(
                          result.used_fold_pipeline ? "2rpq-fold" : "lemma1"));
  if (!result.contained) {
    out.Set("counterexample_word",
            obs::JsonValue::String(
                WordToString(alphabet, result.counterexample)));
  }
  return out;
}

// Sorted tuples rendered as arrays of node names, capped at max_tuples.
void RenderRelation(const GraphDb& graph, const Relation& relation,
                    int64_t max_tuples, obs::JsonValue* response) {
  if (max_tuples <= 0) max_tuples = kDefaultMaxTuples;
  obs::JsonValue tuples = obs::JsonValue::Array();
  int64_t emitted = 0;
  for (const Tuple& tuple : relation.SortedTuples()) {
    if (emitted >= max_tuples) break;
    obs::JsonValue row = obs::JsonValue::Array();
    for (Value value : tuple) {
      row.Append(obs::JsonValue::String(
          graph.NodeName(static_cast<NodeId>(value))));
    }
    tuples.Append(std::move(row));
    ++emitted;
  }
  response->Set("tuples", std::move(tuples));
  response->Set("count",
                obs::JsonValue::Number(static_cast<uint64_t>(relation.size())));
  response->Set("truncated", obs::JsonValue::Bool(
                                 static_cast<int64_t>(relation.size()) >
                                 max_tuples));
}

obs::JsonValue HandleContainment(const Request& request,
                                 const HandlerContext& ctx) {
  (void)ctx;
  const std::string& cls = request.cls;
  if (cls == "rpq" || cls == "2rpq") {
    Alphabet alphabet;
    auto r1 = ParseRegex(request.q1, &alphabet);
    if (!r1.ok()) return StatusError(request.id, r1.status());
    auto r2 = ParseRegex(request.q2, &alphabet);
    if (!r2.ok()) return StatusError(request.id, r2.status());
    // Route through the batch engine (one-job batch): the worker-pool
    // BatchExecGuard chains the job's deadline/budget to the per-request
    // contexts the server installed, and the shared automata cache
    // deduplicates sub-constructions across concurrent requests.
    std::vector<PathContainmentJob> jobs = {{r1->get(), r2->get()}};
    std::vector<PathContainmentResult> results =
        CheckPathContainmentBatch(jobs, alphabet);
    const PathContainmentResult& result = results[0];
    if (!result.status.ok()) return StatusError(request.id, result.status);
    obs::JsonValue response = OkResponse(request.id);
    response.Set("verdict", obs::JsonValue::String(
                                result.contained ? "proved" : "refuted"));
    obs::JsonValue verdict = RenderPathVerdict(result, alphabet);
    for (auto& [key, value] : verdict.members()) {
      response.Set(key, std::move(value));
    }
    return response;
  }
  if (cls == "cq" || cls == "ucq") {
    auto q1 = ParseUcq(request.q1);
    if (!q1.ok()) return StatusError(request.id, q1.status());
    auto q2 = ParseUcq(request.q2);
    if (!q2.ok()) return StatusError(request.id, q2.status());
    auto contained = UcqContained(*q1, *q2);
    if (!contained.ok()) return StatusError(request.id, contained.status());
    obs::JsonValue response = OkResponse(request.id);
    response.Set("verdict", obs::JsonValue::String(*contained ? "proved"
                                                              : "refuted"));
    response.Set("method",
                 obs::JsonValue::String(
                     q1->disjuncts.size() == 1 && q2->disjuncts.size() == 1
                         ? "chandra-merlin"
                         : "sagiv-yannakakis"));
    return response;
  }
  if (cls == "uc2rpq") {
    Alphabet alphabet;
    auto q1 = ParseUc2Rpq(request.q1, &alphabet);
    if (!q1.ok()) return StatusError(request.id, q1.status());
    auto q2 = ParseUc2Rpq(request.q2, &alphabet);
    if (!q2.ok()) return StatusError(request.id, q2.status());
    auto result = CheckUc2RpqContainment(*q1, *q2, alphabet);
    if (!result.ok()) return StatusError(request.id, result.status());
    obs::JsonValue response = OkResponse(request.id);
    response.Set("verdict",
                 obs::JsonValue::String(CertaintyName(result->certainty)));
    response.Set("method", obs::JsonValue::String(result->method));
    response.Set("truncated", obs::JsonValue::Bool(result->truncated));
    if (result->counterexample.has_value()) {
      response.Set("counterexample_graph",
                   obs::JsonValue::String(result->counterexample->ToText()));
    }
    return response;
  }
  if (cls == "rq") {
    auto q1 = ParseRq(request.q1);
    if (!q1.ok()) return StatusError(request.id, q1.status());
    auto q2 = ParseRq(request.q2);
    if (!q2.ok()) return StatusError(request.id, q2.status());
    auto result = CheckRqContainment(*q1, *q2);
    if (!result.ok()) return StatusError(request.id, result.status());
    obs::JsonValue response = OkResponse(request.id);
    response.Set("verdict",
                 obs::JsonValue::String(CertaintyName(result->certainty)));
    response.Set("method", obs::JsonValue::String(result->method));
    if (result->counterexample.has_value()) {
      response.Set("counterexample_database",
                   obs::JsonValue::String(result->counterexample->ToString()));
    }
    return response;
  }
  if (cls == "datalog") {
    auto q1 = ParseDatalog(request.q1);
    if (!q1.ok()) return StatusError(request.id, q1.status());
    auto q2 = ParseDatalog(request.q2);
    if (!q2.ok()) return StatusError(request.id, q2.status());
    auto result = CheckDatalogContainment(*q1, *q2);
    if (!result.ok()) return StatusError(request.id, result.status());
    obs::JsonValue response = OkResponse(request.id);
    response.Set("verdict",
                 obs::JsonValue::String(CertaintyName(result->certainty)));
    response.Set("method", obs::JsonValue::String(result->method));
    if (result->counterexample.has_value()) {
      response.Set("counterexample_database",
                   obs::JsonValue::String(result->counterexample->ToString()));
    }
    return response;
  }
  return ErrorResponse(request.id, "invalid_request",
                       "unknown containment class '" + cls +
                           "' (rpq|2rpq|cq|ucq|uc2rpq|rq|datalog)");
}

obs::JsonValue HandleEquivalence(const Request& request,
                                 const HandlerContext& ctx) {
  (void)ctx;
  const std::string& cls = request.cls;
  if (cls == "rpq" || cls == "2rpq") {
    Alphabet alphabet;
    auto r1 = ParseRegex(request.q1, &alphabet);
    if (!r1.ok()) return StatusError(request.id, r1.status());
    auto r2 = ParseRegex(request.q2, &alphabet);
    if (!r2.ok()) return StatusError(request.id, r2.status());
    // Both directions as one two-job batch: the pool runs them
    // concurrently when worker slots are free.
    std::vector<PathContainmentJob> jobs = {{r1->get(), r2->get()},
                                            {r2->get(), r1->get()}};
    std::vector<PathContainmentResult> results =
        CheckPathContainmentBatch(jobs, alphabet);
    for (const PathContainmentResult& result : results) {
      if (!result.status.ok()) return StatusError(request.id, result.status);
    }
    obs::JsonValue response = OkResponse(request.id);
    bool equivalent = results[0].contained && results[1].contained;
    response.Set("verdict", obs::JsonValue::String(
                                equivalent ? "equivalent" : "not-equivalent"));
    response.Set("forward", RenderPathVerdict(results[0], alphabet));
    response.Set("backward", RenderPathVerdict(results[1], alphabet));
    return response;
  }
  if (cls == "rq") {
    auto q1 = ParseRq(request.q1);
    if (!q1.ok()) return StatusError(request.id, q1.status());
    auto q2 = ParseRq(request.q2);
    if (!q2.ok()) return StatusError(request.id, q2.status());
    auto result = CheckRqEquivalence(*q1, *q2);
    if (!result.ok()) return StatusError(request.id, result.status());
    obs::JsonValue response = OkResponse(request.id);
    response.Set("verdict", obs::JsonValue::String(
                                EquivalenceVerdictName(result->verdict)));
    auto direction = [](const auto& half) {
      obs::JsonValue out = obs::JsonValue::Object();
      out.Set("verdict", obs::JsonValue::String(CertaintyName(half.certainty)));
      out.Set("method", obs::JsonValue::String(half.method));
      if (half.counterexample.has_value()) {
        out.Set("counterexample_database",
                obs::JsonValue::String(half.counterexample->ToString()));
      }
      return out;
    };
    response.Set("forward", direction(result->forward));
    response.Set("backward", direction(result->backward));
    return response;
  }
  return ErrorResponse(request.id,
                       cls.empty() ? "invalid_request" : "unimplemented",
                       "equivalence supports classes rpq|2rpq|rq, got '" +
                           cls + "'");
}

// The label whose transitive closure answers this query, when the regex is
// closure-shaped: exactly `a+` over one forward symbol. (`a*` is NOT
// closure-shaped — it additionally answers every identity pair.)
std::optional<uint32_t> ClosureShapeLabel(const Regex& regex) {
  if (regex.kind() != RegexKind::kPlus || regex.children().size() != 1) {
    return std::nullopt;
  }
  const Regex& atom = *regex.children()[0];
  if (atom.kind() != RegexKind::kAtom || IsInverseSymbol(atom.symbol())) {
    return std::nullopt;
  }
  return SymbolLabel(atom.symbol());
}

obs::JsonValue HandleEval(const Request& request, const HandlerContext& ctx) {
  // Inline graphs are parsed per request; otherwise the request evaluates
  // against its pinned GraphView — one immutable graph version for the
  // request's whole lifetime, shared read-only across workers (alphabet
  // copied before parsing so query-symbol interning never mutates shared
  // state).
  std::optional<GraphDb> local_graph;
  const GraphDb* graph = nullptr;
  bool store_backed = false;
  if (!request.graph.empty()) {
    auto parsed = GraphDb::FromText(request.graph);
    if (!parsed.ok()) return StatusError(request.id, parsed.status());
    local_graph = std::move(parsed).value();
    graph = &*local_graph;
  } else if (ctx.view.has_graph()) {
    graph = ctx.view.graph.get();
    store_backed = true;
  }
  if (graph == nullptr) {
    return ErrorResponse(request.id, "invalid_request",
                         "no graph: pass a 'graph' field, start the "
                         "server with --graph, or send an update first");
  }

  const std::string& cls = request.cls;
  if (cls != "path" && cls != "crpq" && cls != "rq" && cls != "datalog") {
    return ErrorResponse(request.id, "invalid_request",
                         "unknown eval class '" + cls +
                             "' (path|crpq|rq|datalog)");
  }

  // Store-backed answers are cacheable because the key carries the graph
  // epoch (server/graph_store.h): a mutation publishes a new epoch, so a
  // stale entry can never be looked up again. Inline-graph answers are
  // never cached — their graph is not versioned.
  auto render = [&](const Relation& out) {
    obs::JsonValue response = OkResponse(request.id);
    RenderRelation(*graph, out, request.max_tuples, &response);
    if (store_backed) {
      response.Set("epoch", obs::JsonValue::Number(ctx.view.epoch));
    }
    return response;
  };
  std::string cache_key;
  if (store_backed && ctx.store != nullptr) {
    cache_key = GraphStore::EvalCacheKey(ctx.view.epoch, cls, request.query);
    if (std::shared_ptr<const Relation> hit = ctx.store->LookupEval(cache_key);
        hit != nullptr) {
      obs::JsonValue response = render(*hit);
      response.Set("cached", obs::JsonValue::Bool(true));
      return response;
    }
  }
  // Caches the computed answer (full answers only: a deadline or budget
  // trip must surface as an error, never persist a partial answer set).
  auto finish = [&](Relation out) {
    if (Status s = CheckExecContext(); !s.ok()) {
      return StatusError(request.id, s);
    }
    if (!cache_key.empty()) {
      std::shared_ptr<const Relation> stored =
          ctx.store->StoreEval(std::move(cache_key), std::move(out));
      return render(*stored);
    }
    return render(out);
  };

  if (cls == "path") {
    Alphabet alphabet = graph->alphabet();
    auto q = ParsePathQuery(request.query, &alphabet);
    if (!q.ok()) return StatusError(request.id, q.status());
    std::shared_ptr<const GraphSnapshot> snapshot =
        store_backed ? ctx.view.snapshot : graph->Snapshot();
    std::optional<uint32_t> closure_label = ClosureShapeLabel(*q->regex);
    if (store_backed && closure_label.has_value()) {
      // Closure-shaped (`a+`) queries are served from the incrementally
      // maintained per-label closure when the label is live — the answer
      // update batches kept warm from deltas instead of re-running the
      // product BFS (relational/incremental.h).
      if (const Relation* closure = ctx.view.Closure(*closure_label);
          closure != nullptr) {
        obs::IncrCounters::Get().closure_evals.Increment();
        if (auto* profile = obs::QueryProfile::Active()) {
          profile->AddNote("eval_path", "incremental-closure");
        }
        obs::JsonValue response = render(*closure);
        response.Set("incremental", obs::JsonValue::Bool(true));
        return response;
      }
    }
    Relation out(2);
    for (const auto& [x, y] : EvalPathQuery(*snapshot, *q->regex)) {
      out.Insert({x, y});
    }
    // Path evaluation reports deadline/budget truncation through the
    // installed context, not a Status return — surface it rather than
    // answering with a silently partial set (and never seed or cache a
    // partial closure).
    if (Status s = CheckExecContext(); !s.ok()) {
      return StatusError(request.id, s);
    }
    if (store_backed && closure_label.has_value() && ctx.store != nullptr) {
      // First closure-shaped eval of this label: promote it to
      // incrementally maintained, seeding from this full product-BFS
      // answer (= the transitive closure of the label's edge relation).
      Relation base(2);
      for (const auto& [x, y] :
           snapshot->SymbolPairs(ForwardSymbolOf(*closure_label))) {
        base.Insert({x, y});
      }
      Relation closure(2);
      closure.InsertAll(out);
      ctx.store->SeedClosure(ctx.view, *closure_label, std::move(base),
                             std::move(closure));
    }
    return finish(std::move(out));
  }
  if (cls == "crpq") {
    Alphabet alphabet = graph->alphabet();
    auto q = ParseUc2Rpq(request.query, &alphabet);
    if (!q.ok()) return StatusError(request.id, q.status());
    auto out = store_backed ? EvalUc2Rpq(*ctx.view.snapshot, *q)
                            : EvalUc2Rpq(*graph, *q);
    if (!out.ok()) return StatusError(request.id, out.status());
    return finish(*std::move(out));
  }
  // rq / datalog evaluate over the relational image.
  std::optional<Database> local_db;
  const Database* database =
      store_backed ? ctx.view.database.get() : nullptr;
  if (database == nullptr) {
    local_db = GraphToDatabase(*graph);
    database = &*local_db;
  }
  Result<Relation> out = [&]() -> Result<Relation> {
    if (cls == "rq") {
      auto q = ParseRq(request.query);
      if (!q.ok()) return q.status();
      return EvalRqQuery(*database, *q);
    }
    auto q = ParseDatalog(request.query);
    if (!q.ok()) return q.status();
    return EvalDatalogGoal(*q, *database);
  }();
  if (!out.ok()) return StatusError(request.id, out.status());
  return finish(*std::move(out));
}

obs::JsonValue HandleSleep(const Request& request, const HandlerContext& ctx) {
  if (!ctx.enable_sleep) {
    return ErrorResponse(request.id, "invalid_request",
                         "sleep requests are disabled (rqserved "
                         "--enable-sleep)");
  }
  // Hold the worker for sleep_ms in short slices, polling the installed
  // contexts so per-request deadlines and budgets still fire.
  int64_t remaining_ms = request.sleep_ms;
  while (remaining_ms > 0) {
    if (Status s = CheckExecContext(); !s.ok()) {
      return StatusError(request.id, s);
    }
    int64_t slice_ms = std::min<int64_t>(remaining_ms, 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice_ms));
    remaining_ms -= slice_ms;
  }
  obs::JsonValue response = OkResponse(request.id);
  response.Set("slept_ms", obs::JsonValue::Number(request.sleep_ms));
  return response;
}

}  // namespace

obs::JsonValue ExecuteRequest(const Request& request,
                              const HandlerContext& ctx) {
  switch (request.type) {
    case RequestType::kContainment:
      return HandleContainment(request, ctx);
    case RequestType::kEquivalence:
      return HandleEquivalence(request, ctx);
    case RequestType::kEval:
      return HandleEval(request, ctx);
    case RequestType::kStats: {
      obs::JsonValue response = OkResponse(request.id);
      response.Set("stats", obs::SnapshotJson());
      return response;
    }
    case RequestType::kSleep:
      return HandleSleep(request, ctx);
    case RequestType::kHealth:
    case RequestType::kUpdate:
      break;  // answered inline by the server's reader thread
  }
  return ErrorResponse(request.id, "internal",
                       std::string("request type '") +
                           RequestTypeName(request.type) +
                           "' reached the worker pool");
}

}  // namespace server
}  // namespace rq

// Versioned graph store for the live-mutation serving path
// (docs/SERVING.md "Updates").
//
// The store owns the master GraphDb behind a writer mutex and publishes
// immutable GraphViews: a frozen copy of the graph, its CSR snapshot
// (graph/snapshot.h), its relational image (rq/eval.h GraphToDatabase),
// and the per-label transitive-closure images maintained incrementally
// (relational/incremental.h) — all behind one monotonically increasing
// epoch. Consistency model:
//
//   * Readers never block on writers: Acquire() is a shared_ptr copy under
//     a dedicated view mutex held for nanoseconds; the expensive republish
//     happens off to the side under the writer mutex, then swaps in.
//   * A request pins its view at admission time and evaluates against it
//     for its whole lifetime — mutations that land mid-request are
//     invisible to it (the epoch in the response says which version
//     answered).
//   * Writers republish once per update BATCH, not per edge: the rebuild
//     (graph copy + counting-sort snapshot + relational image) is
//     amortized over the batch and its wall-clock is recorded in
//     graph.rebuild_ns.
//   * Every cached artifact derived from graph contents is keyed by the
//     epoch (EvalCacheKey), so a mutation makes stale entries unreachable
//     instead of requiring invalidation; automata-only entries
//     (docs/CACHING.md) stay epoch-free because no graph byte enters
//     their keys.
#ifndef RQ_SERVER_GRAPH_STORE_H_
#define RQ_SERVER_GRAPH_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/lru.h"
#include "common/status.h"
#include "graph/graph_db.h"
#include "graph/snapshot.h"
#include "relational/incremental.h"
#include "relational/relation.h"
#include "server/protocol.h"

namespace rq {
namespace server {

// One immutable published graph version. Copy freely across threads; every
// component is shared and never mutated after publication.
struct GraphView {
  uint64_t epoch = 0;
  std::shared_ptr<const GraphDb> graph;        // null until a graph exists
  std::shared_ptr<const GraphSnapshot> snapshot;
  std::shared_ptr<const Database> database;
  // label id -> maintained transitive closure of that label's edge
  // relation; absent labels are not (currently) maintained.
  std::shared_ptr<
      const std::unordered_map<uint32_t, std::shared_ptr<const Relation>>>
      closures;

  bool has_graph() const { return graph != nullptr; }
  // The maintained closure for `label`, or null (fall back to product-BFS).
  const Relation* Closure(uint32_t label) const {
    if (closures == nullptr) return nullptr;
    auto it = closures->find(label);
    return it == closures->end() ? nullptr : it->second.get();
  }
};

struct GraphStoreOptions {
  // Per-insert bound on the incremental delta product (sources × targets);
  // a blown bound demotes that label's closure to from-scratch evaluation
  // (incr.fallbacks). 0 = unbounded.
  size_t incr_delta_budget = 1u << 20;
  // Byte budget of the epoch-keyed eval answer cache; 0 disables it.
  size_t eval_cache_bytes = 8u << 20;
};

class GraphStore {
 public:
  explicit GraphStore(GraphStoreOptions options = {});

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  // Seeds the master graph from a copy of `graph` and publishes epoch 1.
  // Call before serving traffic; not synchronized against Apply().
  void Load(const GraphDb& graph);

  // The current published view (cheap; never blocks on a writer rebuild).
  GraphView Acquire() const;

  uint64_t epoch() const;

  struct UpdateResult {
    uint64_t epoch = 0;       // epoch the batch published
    size_t nodes_added = 0;
    size_t edges_added = 0;
    size_t closure_pairs = 0;  // pairs derived incrementally for the batch
  };

  // Applies one update batch under the writer mutex and publishes the next
  // epoch. Ops are validated up front (nothing applied on a malformed op);
  // a deadline/memory trip mid-batch publishes the prefix applied so far
  // and returns the error (the epoch in later responses tells the client
  // what landed). Live label closures are maintained per inserted edge;
  // a blown delta budget demotes the label (incr.fallbacks) instead of
  // failing the batch.
  Result<UpdateResult> Apply(const std::vector<UpdateOp>& ops);

  // Promotes `label` to incrementally maintained, using a closure computed
  // from `view` (base = that label's edge relation in the view). Dropped
  // silently when the store has moved past view.epoch — a stale seed must
  // not overwrite a newer closure. Republishes the view's closure map in
  // place (same epoch: the graph itself is unchanged).
  void SeedClosure(const GraphView& view, uint32_t label, Relation base,
                   Relation closure);

  // Epoch-keyed eval answer cache (kind "eval": cache.eval_hits / _misses /
  // ... counters). Both return null / pass-through when disabled.
  std::shared_ptr<const Relation> LookupEval(std::string_view key);
  std::shared_ptr<const Relation> StoreEval(std::string key, Relation answer);

  // epoch || class || '\0' || query — binds every cached answer to the
  // graph version that produced it.
  static std::string EvalCacheKey(uint64_t epoch, std::string_view cls,
                                  std::string_view query);

 private:
  using ClosureMap =
      std::unordered_map<uint32_t, std::shared_ptr<const Relation>>;

  // Rebuilds and swaps in the published view at `epoch_` from the current
  // master state. Caller holds writer_mu_.
  void PublishLocked();

  GraphStoreOptions options_;

  std::mutex writer_mu_;  // serializes Load/Apply/SeedClosure
  GraphDb master_;
  PerLabelClosure closures_;
  // Immutable copies of the maintained closures, refreshed per batch for
  // the labels the batch touched; what PublishLocked hands to new views.
  ClosureMap closure_images_;
  uint64_t epoch_ = 0;

  mutable std::mutex view_mu_;  // guards only the view_ pointer swap
  std::shared_ptr<const GraphView> view_;

  std::optional<cache::LruByteCache<Relation>> eval_cache_;
};

}  // namespace server
}  // namespace rq

#endif  // RQ_SERVER_GRAPH_STORE_H_

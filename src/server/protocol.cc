#include "server/protocol.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <utility>

namespace rq {
namespace server {

namespace {

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

// Blocking write of exactly `n` bytes; retries short writes and EINTR.
Status WriteAll(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t wrote = ::send(fd, data + done, n - done, kSendFlags);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return InternalError(std::string("socket write failed: ") +
                           ::strerror(errno));
    }
    if (wrote == 0) {
      return InternalError("socket write returned 0");
    }
    done += static_cast<size_t>(wrote);
  }
  return Status::Ok();
}

// Blocking read of exactly `n` bytes. *eof_at_start distinguishes a clean
// peer close (no bytes at all) from a truncated frame.
Status ReadAll(int fd, char* data, size_t n, bool* eof_at_start) {
  if (eof_at_start != nullptr) *eof_at_start = false;
  size_t done = 0;
  while (done < n) {
    ssize_t got = ::recv(fd, data + done, n - done, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return InternalError(std::string("socket read failed: ") +
                           ::strerror(errno));
    }
    if (got == 0) {
      if (done == 0 && eof_at_start != nullptr) {
        *eof_at_start = true;
        return Status::Ok();
      }
      return InternalError("connection closed mid-frame");
    }
    done += static_cast<size_t>(got);
  }
  return Status::Ok();
}

// Pulls an optional non-negative integer field out of a request object.
Status ReadNonNegativeInt(const obs::JsonValue& object, const char* key,
                          int64_t* out) {
  const obs::JsonValue* field = object.Find(key);
  if (field == nullptr || field->is_null()) return Status::Ok();
  if (field->kind() != obs::JsonValue::Kind::kNumber) {
    return InvalidArgumentError(std::string("field '") + key +
                                "' must be a number");
  }
  double value = field->number_value();
  if (value < 0) {
    return InvalidArgumentError(std::string("field '") + key +
                                "' must be non-negative");
  }
  *out = static_cast<int64_t>(value);
  return Status::Ok();
}

// Pulls an optional string field out of a request object.
Status ReadString(const obs::JsonValue& object, const char* key,
                  std::string* out) {
  const obs::JsonValue* field = object.Find(key);
  if (field == nullptr || field->is_null()) return Status::Ok();
  if (field->kind() != obs::JsonValue::Kind::kString) {
    return InvalidArgumentError(std::string("field '") + key +
                                "' must be a string");
  }
  *out = field->string_value();
  return Status::Ok();
}

// Strict decode of one element of an update batch's "ops" array.
Result<UpdateOp> ParseUpdateOp(const obs::JsonValue& value, size_t index) {
  auto at = [&](const std::string& what) {
    return what + " (ops[" + std::to_string(index) + "])";
  };
  if (!value.is_object()) {
    return InvalidArgumentError(at("each op must be a JSON object"));
  }
  UpdateOp op;
  std::string kind;
  RQ_RETURN_IF_ERROR(ReadString(value, "op", &kind));
  if (kind == "add_node") {
    op.kind = UpdateOp::Kind::kAddNode;
    RQ_RETURN_IF_ERROR(ReadString(value, "name", &op.name));
    return op;
  }
  if (kind == "add_edge") {
    op.kind = UpdateOp::Kind::kAddEdge;
    RQ_RETURN_IF_ERROR(ReadString(value, "src", &op.src));
    RQ_RETURN_IF_ERROR(ReadString(value, "label", &op.label));
    RQ_RETURN_IF_ERROR(ReadString(value, "dst", &op.dst));
    if (op.src.empty() || op.label.empty() || op.dst.empty()) {
      return InvalidArgumentError(
          at("add_edge needs non-empty 'src', 'label', and 'dst'"));
    }
    return op;
  }
  return InvalidArgumentError(at("op must be 'add_node' or 'add_edge', got '" +
                                 kind + "'"));
}

}  // namespace

Status WriteRaw(int fd, std::string_view bytes) {
  return WriteAll(fd, bytes.data(), bytes.size());
}

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > 0xFFFFFFFFu) {
    return InvalidArgumentError("frame payload exceeds 4 GiB length prefix");
  }
  uint32_t n = static_cast<uint32_t>(payload.size());
  char header[4] = {static_cast<char>((n >> 24) & 0xFF),
                    static_cast<char>((n >> 16) & 0xFF),
                    static_cast<char>((n >> 8) & 0xFF),
                    static_cast<char>(n & 0xFF)};
  RQ_RETURN_IF_ERROR(WriteAll(fd, header, sizeof(header)));
  return WriteAll(fd, payload.data(), payload.size());
}

Status ReadFrame(int fd, std::string* payload, bool* clean_eof,
                 size_t max_frame_bytes) {
  payload->clear();
  *clean_eof = false;
  char header[4];
  bool eof = false;
  RQ_RETURN_IF_ERROR(ReadAll(fd, header, sizeof(header), &eof));
  if (eof) {
    *clean_eof = true;
    return Status::Ok();
  }
  uint32_t n = (static_cast<uint32_t>(static_cast<unsigned char>(header[0]))
                << 24) |
               (static_cast<uint32_t>(static_cast<unsigned char>(header[1]))
                << 16) |
               (static_cast<uint32_t>(static_cast<unsigned char>(header[2]))
                << 8) |
               static_cast<uint32_t>(static_cast<unsigned char>(header[3]));
  if (n > max_frame_bytes) {
    return InvalidArgumentError("frame of " + std::to_string(n) +
                                " bytes exceeds the " +
                                std::to_string(max_frame_bytes) +
                                "-byte frame limit");
  }
  payload->resize(n);
  if (n > 0) {
    RQ_RETURN_IF_ERROR(ReadAll(fd, payload->data(), n, nullptr));
  }
  return Status::Ok();
}

const char* RequestTypeName(RequestType type) {
  switch (type) {
    case RequestType::kContainment:
      return "containment";
    case RequestType::kEquivalence:
      return "equivalence";
    case RequestType::kEval:
      return "eval";
    case RequestType::kUpdate:
      return "update";
    case RequestType::kStats:
      return "stats";
    case RequestType::kHealth:
      return "health";
    case RequestType::kSleep:
      return "sleep";
  }
  return "unknown";
}

Result<Request> ParseRequest(std::string_view text) {
  RQ_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::JsonValue::Parse(text));
  if (!doc.is_object()) {
    return InvalidArgumentError("request must be a JSON object");
  }
  Request request;
  const obs::JsonValue* type = doc.Find("type");
  if (type == nullptr || type->kind() != obs::JsonValue::Kind::kString) {
    return InvalidArgumentError("request needs a string 'type' field");
  }
  const std::string& name = type->string_value();
  if (name == "containment") {
    request.type = RequestType::kContainment;
  } else if (name == "equivalence") {
    request.type = RequestType::kEquivalence;
  } else if (name == "eval") {
    request.type = RequestType::kEval;
  } else if (name == "update") {
    request.type = RequestType::kUpdate;
  } else if (name == "stats") {
    request.type = RequestType::kStats;
  } else if (name == "health") {
    request.type = RequestType::kHealth;
  } else if (name == "sleep") {
    request.type = RequestType::kSleep;
  } else {
    return InvalidArgumentError("unknown request type '" + name + "'");
  }
  if (const obs::JsonValue* id = doc.Find("id"); id != nullptr) {
    request.id = *id;
  }
  RQ_RETURN_IF_ERROR(ReadString(doc, "class", &request.cls));
  RQ_RETURN_IF_ERROR(ReadString(doc, "q1", &request.q1));
  RQ_RETURN_IF_ERROR(ReadString(doc, "q2", &request.q2));
  RQ_RETURN_IF_ERROR(ReadString(doc, "query", &request.query));
  RQ_RETURN_IF_ERROR(ReadString(doc, "graph", &request.graph));
  if (const obs::JsonValue* ops = doc.Find("ops");
      ops != nullptr && !ops->is_null()) {
    if (!ops->is_array()) {
      return InvalidArgumentError("field 'ops' must be an array");
    }
    request.ops.reserve(ops->items().size());
    for (size_t i = 0; i < ops->items().size(); ++i) {
      RQ_ASSIGN_OR_RETURN(UpdateOp op, ParseUpdateOp(ops->items()[i], i));
      request.ops.push_back(std::move(op));
    }
  }
  if (request.type == RequestType::kUpdate && request.ops.empty()) {
    return InvalidArgumentError(
        "update requests need a non-empty 'ops' array");
  }
  RQ_RETURN_IF_ERROR(ReadNonNegativeInt(doc, "timeout_ms",
                                        &request.timeout_ms));
  RQ_RETURN_IF_ERROR(ReadNonNegativeInt(doc, "memory_budget_mb",
                                        &request.memory_budget_mb));
  RQ_RETURN_IF_ERROR(ReadNonNegativeInt(doc, "max_tuples",
                                        &request.max_tuples));
  RQ_RETURN_IF_ERROR(ReadNonNegativeInt(doc, "sleep_ms", &request.sleep_ms));
  return request;
}

const char* ErrorCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
      return "invalid_request";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kInternal:
      return "internal";
  }
  return "internal";
}

obs::JsonValue OkResponse(const obs::JsonValue& id) {
  obs::JsonValue response = obs::JsonValue::Object();
  response.Set("id", id);
  response.Set("ok", obs::JsonValue::Bool(true));
  return response;
}

obs::JsonValue ErrorResponse(const obs::JsonValue& id, std::string_view code,
                             std::string_view message) {
  obs::JsonValue response = obs::JsonValue::Object();
  response.Set("id", id);
  response.Set("ok", obs::JsonValue::Bool(false));
  response.Set("error", obs::JsonValue::String(std::string(code)));
  response.Set("message", obs::JsonValue::String(std::string(message)));
  return response;
}

}  // namespace server
}  // namespace rq

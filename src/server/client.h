// Minimal blocking client for the query service's framed protocol, used by
// the server tests, the closed-loop throughput bench, and anyone driving
// rqserved programmatically. One socket per client; Call() is
// send-one-receive-one (the server may reorder responses across pipelined
// requests, so callers that pipeline should match on `id` themselves via
// Send/Receive).
#ifndef RQ_SERVER_CLIENT_H_
#define RQ_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"
#include "obs/json.h"

namespace rq {
namespace server {

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient() { Close(); }

  BlockingClient(BlockingClient&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  BlockingClient& operator=(BlockingClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  static Result<BlockingClient> Connect(const std::string& host,
                                        uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  // One framed request out; one framed response (parsed) back.
  Status Send(const obs::JsonValue& request);
  Result<obs::JsonValue> Receive();
  Result<obs::JsonValue> Call(const obs::JsonValue& request);

 private:
  int fd_ = -1;
};

// One-shot HTTP GET against the server's listener (the /metrics scrape
// path); returns the response body on a 200.
Result<std::string> HttpGet(const std::string& host, uint16_t port,
                            const std::string& path);

}  // namespace server
}  // namespace rq

#endif  // RQ_SERVER_CLIENT_H_

// Wire protocol of the long-lived query service (docs/SERVING.md).
//
// Transport: length-prefixed JSON over a byte stream. Each frame is a
// 4-byte big-endian payload length followed by that many bytes of UTF-8
// JSON. Requests and responses use the same framing; a client may pipeline
// (responses carry the request's `id` echoed verbatim, and MAY come back
// out of order — the worker pool completes cheap requests past expensive
// ones).
//
// Request object:
//   {"type": "containment" | "equivalence" | "eval" | "update" | "stats"
//            | "health" | "sleep",
//    "id": <any JSON value, echoed>,                        // optional
//    "class": "...",             // containment: rpq|2rpq|cq|ucq|uc2rpq|
//                                //              rq|datalog
//                                // equivalence: rpq|2rpq|rq
//                                // eval:        path|crpq|rq|datalog
//    "q1": "...", "q2": "...",   // containment / equivalence query texts
//    "query": "...",             // eval query text
//    "graph": "...",             // eval: inline edge-list text (optional;
//                                // defaults to the server's --graph)
//    "timeout_ms": N,            // optional; clipped to the server cap
//    "memory_budget_mb": N,      // optional; clipped to the server cap
//    "max_tuples": N,            // eval: answer-set cap (default 10000)
//    "ops": [...],               // update: batched mutations (below)
//    "sleep_ms": N}              // sleep only (test/bench endpoint)
//
// Update ops mutate the server's live graph (docs/SERVING.md "Updates");
// each element of "ops" is one of
//   {"op": "add_node", "name": "..."}            // name optional
//   {"op": "add_edge", "src": "...", "label": "...", "dst": "..."}
// applied in order as ONE batch: the whole batch publishes one new graph
// epoch, and the response carries {"epoch": E, "nodes_added": N,
// "edges_added": M, "closure_pairs": P}. Node names are interned on first
// use (an add_edge implies its endpoints). Updates are answered by the
// connection's reader thread in arrival order, so a client that pipelines
// an update and then an eval on the same connection reads its own write.
//
// Response object: {"id": ..., "ok": true, ...result fields...} or
// {"id": ..., "ok": false, "error": "<code>", "message": "..."} with codes
// invalid_request | overloaded | draining | deadline_exceeded |
// resource_exhausted | cancelled | unimplemented | internal. `overloaded`
// is the 429-style admission-control rejection (docs/SERVING.md).
//
// The same listener also answers plain HTTP GETs (a connection whose first
// bytes are "GET " is served as HTTP/1.0 and closed): /metrics returns the
// Prometheus exposition (obs/prometheus.h), /healthz a one-line liveness
// body. Framed and HTTP traffic share the port so the exporter is
// scrapeable without a sidecar.
#ifndef RQ_SERVER_PROTOCOL_H_
#define RQ_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace rq {
namespace server {

// Upper bound on a single frame's payload; a peer announcing more is a
// protocol error (the connection is closed, not the process OOM'd).
inline constexpr size_t kMaxFrameBytes = 16u << 20;

// Writes one length-prefixed frame (blocking; handles partial writes and
// EINTR; never raises SIGPIPE). `fd` must be a socket.
Status WriteFrame(int fd, std::string_view payload);

// Writes raw bytes with the same blocking/retry semantics but no length
// prefix (the server's HTTP responses).
Status WriteRaw(int fd, std::string_view bytes);

// Reads one length-prefixed frame into `*payload` (blocking). On a clean
// peer close before any header byte, returns OK with *clean_eof = true and
// an empty payload; EOF mid-frame and oversized announcements are errors.
Status ReadFrame(int fd, std::string* payload, bool* clean_eof,
                 size_t max_frame_bytes = kMaxFrameBytes);

enum class RequestType {
  kContainment,
  kEquivalence,
  kEval,
  kUpdate,
  kStats,
  kHealth,
  kSleep,
};
const char* RequestTypeName(RequestType type);

// One decoded graph mutation within an update batch.
struct UpdateOp {
  enum class Kind { kAddNode, kAddEdge };
  Kind kind = Kind::kAddNode;
  std::string name;   // add_node; empty = anonymous node
  std::string src;    // add_edge endpoints and label (named; interned on
  std::string label;  // first use)
  std::string dst;
};

// A decoded request frame. String fields are empty when absent; numeric
// fields 0 (= "use the server default").
struct Request {
  RequestType type = RequestType::kHealth;
  obs::JsonValue id;          // echoed verbatim; null when absent
  std::string cls;
  std::string q1;
  std::string q2;
  std::string query;
  std::string graph;
  std::vector<UpdateOp> ops;  // update batches
  int64_t timeout_ms = 0;
  int64_t memory_budget_mb = 0;
  int64_t max_tuples = 0;
  int64_t sleep_ms = 0;
};

// Strict decode of one request frame: unknown `type` values, non-string
// query fields, and negative numeric fields are kInvalidArgument.
Result<Request> ParseRequest(std::string_view text);

// The wire error code for a non-OK library Status.
const char* ErrorCodeForStatus(const Status& status);

// Response skeletons; handlers add result fields to the OK one.
obs::JsonValue OkResponse(const obs::JsonValue& id);
obs::JsonValue ErrorResponse(const obs::JsonValue& id, std::string_view code,
                             std::string_view message);

}  // namespace server
}  // namespace rq

#endif  // RQ_SERVER_PROTOCOL_H_

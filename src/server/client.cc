#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "server/protocol.h"

namespace rq {
namespace server {

namespace {

Result<int> ConnectFd(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + ::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("bad host address '" + host + "'");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status status = InternalError("connect " + host + ":" +
                                  std::to_string(port) + ": " +
                                  ::strerror(errno));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Result<BlockingClient> BlockingClient::Connect(const std::string& host,
                                               uint16_t port) {
  RQ_ASSIGN_OR_RETURN(int fd, ConnectFd(host, port));
  BlockingClient client;
  client.fd_ = fd;
  return client;
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status BlockingClient::Send(const obs::JsonValue& request) {
  if (fd_ < 0) return InternalError("client is not connected");
  return WriteFrame(fd_, request.Dump());
}

Result<obs::JsonValue> BlockingClient::Receive() {
  if (fd_ < 0) return InternalError("client is not connected");
  std::string payload;
  bool clean_eof = false;
  RQ_RETURN_IF_ERROR(ReadFrame(fd_, &payload, &clean_eof));
  if (clean_eof) {
    return InternalError("server closed the connection");
  }
  return obs::JsonValue::Parse(payload);
}

Result<obs::JsonValue> BlockingClient::Call(const obs::JsonValue& request) {
  RQ_RETURN_IF_ERROR(Send(request));
  return Receive();
}

Result<std::string> HttpGet(const std::string& host, uint16_t port,
                            const std::string& path) {
  RQ_ASSIGN_OR_RETURN(int fd, ConnectFd(host, port));
  std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  Status write_status = WriteRaw(fd, request);
  if (!write_status.ok()) {
    ::close(fd);
    return write_status;
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    response.append(buffer, static_cast<size_t>(got));
  }
  ::close(fd);
  size_t body_start = response.find("\r\n\r\n");
  if (body_start == std::string::npos) {
    return InternalError("malformed HTTP response");
  }
  if (response.rfind("HTTP/1.0 200", 0) != 0 &&
      response.rfind("HTTP/1.1 200", 0) != 0) {
    return InternalError("HTTP error: " +
                         response.substr(0, response.find("\r\n")));
  }
  return response.substr(body_start + 4);
}

}  // namespace server
}  // namespace rq

// Request execution for the query service: maps one decoded protocol
// Request onto the library's checkers and evaluators and renders the
// response document. Handlers run on server worker threads with the
// per-request ExecContext / MemContext already installed (server.cc), so
// deadline and budget trips surface here as non-OK Statuses and become
// `deadline_exceeded` / `resource_exhausted` wire errors.
#ifndef RQ_SERVER_HANDLERS_H_
#define RQ_SERVER_HANDLERS_H_

#include <memory>
#include <optional>

#include "graph/graph_db.h"
#include "graph/snapshot.h"
#include "obs/json.h"
#include "relational/relation.h"
#include "server/protocol.h"

namespace rq {
namespace server {

// Shared read-only state handlers evaluate against. The preloaded graph
// (rqserved --graph) is never mutated after startup: per-request query
// parsing interns symbols into a COPY of its alphabet, evaluation runs
// over the immutable snapshot, so any number of workers may execute
// concurrently against it.
struct HandlerContext {
  const GraphDb* graph = nullptr;                 // may be null (no --graph)
  std::shared_ptr<const GraphSnapshot> snapshot;  // frozen at load time
  const Database* database = nullptr;             // GraphToDatabase(*graph)
  // Gate for the `sleep` request type (a test/bench endpoint that holds a
  // worker for sleep_ms while polling the installed contexts). Off in
  // production so clients cannot park workers at will.
  bool enable_sleep = false;
};

// Default / hard cap applied to eval answer sets when the request does not
// set max_tuples (the full answer can be |V|^2 tuples; a serving process
// must bound its response frames).
inline constexpr int64_t kDefaultMaxTuples = 10000;

// Executes containment / equivalence / eval / stats / sleep requests and
// returns the complete response document (never throws; failures come back
// as {"ok": false} responses). kHealth is answered by the server itself —
// passing it here is an internal error response.
obs::JsonValue ExecuteRequest(const Request& request,
                              const HandlerContext& ctx);

}  // namespace server
}  // namespace rq

#endif  // RQ_SERVER_HANDLERS_H_

// Request execution for the query service: maps one decoded protocol
// Request onto the library's checkers and evaluators and renders the
// response document. Handlers run on server worker threads with the
// per-request ExecContext / MemContext already installed (server.cc), so
// deadline and budget trips surface here as non-OK Statuses and become
// `deadline_exceeded` / `resource_exhausted` wire errors.
#ifndef RQ_SERVER_HANDLERS_H_
#define RQ_SERVER_HANDLERS_H_

#include <memory>
#include <optional>

#include "graph/graph_db.h"
#include "graph/snapshot.h"
#include "obs/json.h"
#include "relational/relation.h"
#include "server/graph_store.h"
#include "server/protocol.h"

namespace rq {
namespace server {

// Per-request execution state. `view` is the graph version the request was
// pinned to at ADMISSION (server/graph_store.h): every component is
// immutable and shared, so any number of workers evaluate concurrently
// against their own pinned versions while update batches publish newer
// ones. Per-request query parsing interns symbols into a COPY of the
// view's alphabet, so symbol interning never mutates shared state.
struct HandlerContext {
  // Pinned graph version for evals without an inline graph;
  // view.has_graph() is false when the server has no graph yet.
  GraphView view;
  // Epoch-keyed eval cache + closure seeding; null outside a server (e.g.
  // direct ExecuteRequest calls in tests) disables both.
  GraphStore* store = nullptr;
  // Gate for the `sleep` request type (a test/bench endpoint that holds a
  // worker for sleep_ms while polling the installed contexts). Off in
  // production so clients cannot park workers at will.
  bool enable_sleep = false;
};

// Default / hard cap applied to eval answer sets when the request does not
// set max_tuples (the full answer can be |V|^2 tuples; a serving process
// must bound its response frames).
inline constexpr int64_t kDefaultMaxTuples = 10000;

// Executes containment / equivalence / eval / stats / sleep requests and
// returns the complete response document (never throws; failures come back
// as {"ok": false} responses). kHealth is answered by the server itself —
// passing it here is an internal error response.
obs::JsonValue ExecuteRequest(const Request& request,
                              const HandlerContext& ctx);

}  // namespace server
}  // namespace rq

#endif  // RQ_SERVER_HANDLERS_H_

// The long-lived concurrent query service (docs/SERVING.md).
//
// QueryServer listens on one TCP port and speaks the length-prefixed JSON
// protocol (server/protocol.h); the same listener answers plain HTTP GETs
// for /metrics (Prometheus exposition) and /healthz. Threading model:
//
//   * one accept thread (poll on the listen fd plus a wake pipe, so
//     BeginDrain interrupts a blocked accept);
//   * one reader thread per connection, which decodes frames, answers
//     health inline, applies `update` batches against the versioned graph
//     store (server/graph_store.h — serialized by the store's writer
//     mutex, and ordered with this connection's later requests, so a
//     pipelined update-then-eval reads its own write), and runs ADMISSION
//     CONTROL: a request is either enqueued on the bounded worker queue —
//     pinning the graph version it will evaluate against — or shed with
//     an `overloaded` response; the queue never grows past
//     max_queue_depth and new work is refused while in-flight request
//     memory exceeds max_inflight_bytes, so overload degrades into fast
//     rejections instead of unbounded buffering;
//   * `workers` worker threads popping the queue. Each request runs under
//     a fresh ExecContext deadline and MemContext budget derived from the
//     request's timeout_ms / memory_budget_mb clipped to the server caps;
//     request MemContexts chain to one server-wide pot, which is what the
//     in-flight byte threshold reads. The containment/eval handlers reuse
//     the batch engine and the shared automata cache, so the cache stays
//     warm across requests.
//
// Graceful drain (SIGTERM in rqserved): BeginDrain() stops accepting,
// requests already queued or running complete and their responses are
// written, later frames on live connections get `draining` responses, and
// Wait() returns once the workers have emptied the queue and every
// connection is torn down (flushing the flight-recorder dump if
// configured). All server.* counters/gauges/histograms are documented in
// docs/OBSERVABILITY.md.
#ifndef RQ_SERVER_SERVER_H_
#define RQ_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/mem.h"
#include "common/status.h"
#include "graph/graph_db.h"
#include "relational/relation.h"
#include "server/graph_store.h"
#include "server/handlers.h"
#include "server/protocol.h"

namespace rq {
namespace server {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  // 0 = pick an ephemeral port; read it back with port() after Start().
  uint16_t port = 0;
  unsigned workers = 4;

  // Admission control: shed (respond `overloaded`) instead of queueing
  // once this many requests await a worker, refuse new connections past
  // max_connections, and shed new requests while the server-wide memory
  // pot of in-flight requests exceeds max_inflight_bytes (0 = no byte
  // threshold).
  size_t max_queue_depth = 128;
  size_t max_connections = 1024;
  uint64_t max_inflight_bytes = 0;

  // Per-request resource defaults and caps. A request's own timeout_ms /
  // memory_budget_mb is clipped to the max; 0 defaults mean unlimited.
  int64_t default_timeout_ms = 0;
  int64_t max_timeout_ms = 0;
  int64_t default_memory_budget_mb = 0;
  int64_t max_memory_budget_mb = 0;

  // Preloaded graph for eval requests without an inline graph. COPIED into
  // the versioned graph store at Start() (epoch 1); the server never reads
  // it afterwards, and `update` requests mutate the store's copy only.
  const GraphDb* graph = nullptr;

  // Live mutation knobs (server/graph_store.h, docs/SERVING.md "Updates").
  // enable_updates=false answers every `update` with invalid_request
  // (rqserved --read-only); the delta budget bounds each insert's
  // incremental closure product before falling back to re-evaluation; the
  // cache bytes bound the epoch-keyed eval answer cache (0 disables it).
  bool enable_updates = true;
  size_t incr_delta_budget = 1u << 20;
  size_t eval_cache_bytes = 8u << 20;

  // Gate for the `sleep` request type (tests/bench only).
  bool enable_sleep = false;

  // When non-empty, Wait() flushes the flight recorder's ring of completed
  // queries here as part of the drain.
  std::string flight_dump_path;
};

class QueryServer {
 public:
  explicit QueryServer(ServerOptions options);
  ~QueryServer();  // hard-stops (drain + cancel in-flight) if still running

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Binds, listens, and spawns the accept/worker threads. Fails (and
  // leaves the server stopped) if the address cannot be bound.
  Status Start();

  // The bound port (resolves ephemeral requests); 0 before Start().
  uint16_t port() const { return port_; }

  bool serving() const { return state_.load() == State::kServing; }
  bool draining() const { return state_.load() == State::kDraining; }

  // Graceful shutdown: stop accepting, let queued and running requests
  // complete, answer later frames with `draining`. Idempotent; returns
  // immediately (Wait() blocks for completion).
  void BeginDrain();

  // Blocks until the drain completes and every thread is joined.
  void Wait();
  void DrainAndWait();

  // Like DrainAndWait but also cancels in-flight requests (their
  // responses report `cancelled`). Used by the destructor.
  void Stop();

  // Introspection for tests and the health endpoint.
  size_t active_connections() const;
  size_t queue_depth() const;
  size_t inflight_requests() const { return inflight_.load(); }
  uint64_t inflight_bytes() const { return server_pot_.total_bytes(); }
  // The versioned graph store backing eval/update requests.
  GraphStore& graph_store() { return store_; }
  uint64_t graph_epoch() const { return store_.epoch(); }

 private:
  enum class State { kIdle, kServing, kDraining, kStopped };

  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> closed{false};
    ~Connection();
  };
  using ConnPtr = std::shared_ptr<Connection>;

  struct Job {
    ConnPtr conn;
    Request request;
    // Graph version pinned at ADMISSION: the request evaluates against
    // this view no matter how many update batches publish before a worker
    // picks it up (docs/SERVING.md "Updates").
    GraphView view;
    uint64_t enqueue_ns = 0;
  };

  void AcceptLoop();
  void ConnectionLoop(ConnPtr conn, uint64_t conn_id);
  void ServeHttp(const ConnPtr& conn);
  void HandleFrames(const ConnPtr& conn);
  void WorkerLoop();
  void ExecuteJob(Job& job);
  // Applies one update batch against the graph store (on the connection
  // reader thread, so per-connection pipelining reads its own writes).
  obs::JsonValue ExecuteUpdate(const Request& request);
  void WriteResponse(const ConnPtr& conn, const obs::JsonValue& response);
  obs::JsonValue HealthResponse(const obs::JsonValue& id);
  // Joins reader threads whose connections have closed (called from the
  // accept loop and from Wait).
  void ReapFinishedConnections();

  ServerOptions options_;
  GraphStore store_;

  std::atomic<State> state_{State::kIdle};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;

  // Accounting pot shared by every in-flight request's MemContext; its
  // total is the admission controller's in-flight byte signal.
  MemContext server_pot_;
  // Tripped by Stop() so in-flight requests unwind promptly.
  CancelToken cancel_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  std::atomic<size_t> inflight_{0};

  mutable std::mutex conns_mu_;
  std::unordered_map<uint64_t, ConnPtr> conns_;
  std::unordered_map<uint64_t, std::thread> conn_threads_;
  std::vector<uint64_t> finished_conn_ids_;
  uint64_t next_conn_id_ = 0;

  std::mutex lifecycle_mu_;  // serializes Wait() against itself
  bool joined_ = false;
};

}  // namespace server
}  // namespace rq

#endif  // RQ_SERVER_SERVER_H_

#!/usr/bin/env python3
"""Minimal validator for Prometheus text exposition files (format 0.0.4)
as produced by obs/prometheus.h (RenderPrometheusText).

    bench/check_prometheus.py FILE [FILE...]

Checks, per file:
  * every non-comment line parses as `name value` or `name{labels} value`
    with a legal metric name and a finite non-negative number
    (+Inf is legal only as a `le` label value); label values may carry
    the format's escapes (\\\\, \\", \\n) — any other backslash escape is
    a violation;
  * every sample's family has a preceding `# TYPE` line;
  * `rq_` namespacing: every family name starts with "rq_";
  * histogram families (TYPE histogram) are coherent: `_bucket` cumulative
    counts are non-decreasing in `le` order, a `le="+Inf"` bucket exists,
    and it equals the family's `_count` sample;
  * at least one counter sample is present (an empty export means the
    binary never touched the registry — that is a wiring bug, not a
    quiet success).

Exit status: 0 = all files valid, 1 = any violation (each is printed),
2 = usage error.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# Label values are quoted strings with \\, \", and \n escapes (exposition
# format 0.0.4) — a value may contain commas, braces, and escaped quotes,
# so the label block is matched as a sequence of key="..." pairs rather
# than a naive [^}]* slice.
LABEL_PAIR = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
# `name{le="123"} 45`, `name{query="a\"b"} 1`, or `name 45`
SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>(?:' + LABEL_PAIR + r')(?:,' + LABEL_PAIR + r')*)?\})?'
    r' (?P<value>\S+)$')
LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"')
# The only legal escapes in a label value.
LABEL_ESCAPE_RE = re.compile(r'\\(?P<c>.)')


def family_of(name):
    """Strips the histogram sample suffixes to the declared family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_file(path):
    errors = []

    def err(lineno, message):
        errors.append(f"{path}:{lineno}: {message}")

    types = {}            # family -> declared type
    counters = 0
    # histogram family -> {"buckets": [(le, value)], "count": int|None}
    histograms = {}

    with open(path) as f:
        lines = f.read().splitlines()

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                family, metric_type = parts[2], parts[3]
                if not NAME_RE.match(family):
                    err(lineno, f"bad family name {family!r}")
                if not family.startswith("rq_"):
                    err(lineno, f"family {family!r} missing rq_ namespace")
                if metric_type not in ("counter", "gauge", "histogram",
                                       "summary", "untyped"):
                    err(lineno, f"unknown TYPE {metric_type!r}")
                types[family] = metric_type
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            err(lineno, f"unparseable sample line: {line!r}")
            continue
        name, labels, raw_value = (m.group("name"), m.group("labels"),
                                   m.group("value"))
        family = family_of(name)
        declared = types.get(family) or types.get(name)
        if declared is None:
            err(lineno, f"sample {name!r} has no preceding # TYPE")
            continue

        le = None
        if labels:
            for lm in LABEL_RE.finditer(labels):
                val = lm.group("val")
                for em in LABEL_ESCAPE_RE.finditer(val):
                    if em.group("c") not in ('\\', '"', 'n'):
                        err(lineno, f"illegal escape \\{em.group('c')!s} "
                                    f"in label value {val!r}")
                if lm.group("key") == "le":
                    le = val

        try:
            value = float(raw_value)
        except ValueError:
            err(lineno, f"non-numeric value {raw_value!r}")
            continue
        if value != value or value in (float("inf"), float("-inf")):
            err(lineno, f"non-finite value {raw_value!r}")
            continue
        if value < 0:
            err(lineno, f"negative value {raw_value!r} for {name!r}")

        if declared == "counter":
            counters += 1
        if declared == "histogram":
            entry = histograms.setdefault(family,
                                          {"buckets": [], "count": None})
            if name.endswith("_bucket"):
                if le is None:
                    err(lineno, f"{name!r} bucket missing le label")
                else:
                    entry["buckets"].append((lineno, le, value))
            elif name.endswith("_count"):
                entry["count"] = (lineno, value)

    for family, entry in sorted(histograms.items()):
        buckets = entry["buckets"]
        if not buckets:
            err(0, f"histogram {family!r} has no _bucket samples")
            continue
        prev = -1.0
        for lineno, le, value in buckets:
            if value < prev:
                err(lineno, f"histogram {family!r} bucket le={le} "
                            f"not cumulative ({value} < {prev})")
            prev = value
        last_lineno, last_le, last_value = buckets[-1]
        if last_le != "+Inf":
            err(last_lineno, f"histogram {family!r} last bucket is "
                             f'le="{last_le}", expected le="+Inf"')
        if entry["count"] is None:
            err(0, f"histogram {family!r} has no _count sample")
        elif entry["count"][1] != last_value:
            err(entry["count"][0],
                f"histogram {family!r} _count {entry['count'][1]} != "
                f'le="+Inf" bucket {last_value}')

    if counters == 0:
        err(0, "no counter samples at all — empty or unwired export")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(check_file(path))
    for e in all_errors:
        print(e, file=sys.stderr)
    if all_errors:
        return 1
    print(f"check_prometheus: {len(argv) - 1} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// Closed-loop mixed read/write benchmark for live graph mutations
// (docs/SERVING.md "Updates"): an in-process QueryServer on a loopback
// port, W writer clients streaming `update` batches while R reader clients
// issue closure-shaped (`knows+`, served from the incrementally maintained
// per-label closure) and plain path evals against the versioned store.
// Every client waits for each answer before sending the next request, so
// the numbers are service throughput under contention, not queueing
// artifacts.
//
// Reported per benchmark (user counters in the rq-bench/1 JSON):
//   mutation_throughput / mutations_per_s   update batches applied per
//                                           second (the suite headline)
//   reads_per_s                             eval answers per second
//   edges_per_s                             individual edges inserted/s
//   write_p99_us                            p99 wall latency of one batch
//                                           (admission + apply + republish)
//
// Writers append fresh spoke nodes onto a small core cycle, so each
// insert's incremental delta product stays small and bounded — the
// workload measures sustained mutation throughput, not closure blowup.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph_db.h"
#include "obs/json.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using rq::GraphDb;
using rq::server::BlockingClient;
using rq::server::QueryServer;
using rq::server::ServerOptions;

constexpr char kHost[] = "127.0.0.1";
constexpr int kBatchesPerWriterPerRound = 8;
constexpr int kEdgesPerBatch = 4;
constexpr int kEvalsPerReaderPerRound = 8;

rq::obs::JsonValue UpdateBatch(int64_t id, int writer, uint64_t serial) {
  using rq::obs::JsonValue;
  JsonValue request = JsonValue::Object();
  request.Set("type", JsonValue::String("update"));
  request.Set("id", JsonValue::Number(id));
  JsonValue ops = JsonValue::Array();
  for (int i = 0; i < kEdgesPerBatch; ++i) {
    // Fresh spoke node -> core: preds*(spoke) = {spoke}, so the
    // incremental delta product is O(|succ*(core)|), independent of how
    // long the run has been going.
    JsonValue op = JsonValue::Object();
    op.Set("op", JsonValue::String("add_edge"));
    op.Set("src", JsonValue::String("w" + std::to_string(writer) + "s" +
                                    std::to_string(serial) + "e" +
                                    std::to_string(i)));
    op.Set("label", JsonValue::String("knows"));
    op.Set("dst", JsonValue::String("core"));
    ops.Append(std::move(op));
  }
  request.Set("ops", std::move(ops));
  return request;
}

rq::obs::JsonValue EvalRequest(int64_t id, int variant) {
  using rq::obs::JsonValue;
  JsonValue request = JsonValue::Object();
  request.Set("type", JsonValue::String("eval"));
  request.Set("id", JsonValue::Number(id));
  request.Set("class", JsonValue::String("path"));
  // Alternate the incremental fast path (`knows+`) with a query that runs
  // the product-BFS every time, so both read paths are in the mix.
  request.Set("query", JsonValue::String(variant % 2 == 0 ? "knows+"
                                                          : "knows knows"));
  request.Set("max_tuples", JsonValue::Number(int64_t{1}));
  return request;
}

struct RoundStats {
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> reads{0};
  std::atomic<int> failures{0};
};

void RunWriter(uint16_t port, int writer, uint64_t round,
               std::vector<uint64_t>* latencies_ns, RoundStats* stats) {
  auto client = BlockingClient::Connect(kHost, port);
  if (!client.ok()) {
    stats->failures.fetch_add(1);
    return;
  }
  for (int i = 0; i < kBatchesPerWriterPerRound; ++i) {
    uint64_t serial = round * kBatchesPerWriterPerRound +
                      static_cast<uint64_t>(i);
    auto start = std::chrono::steady_clock::now();
    auto response = client->Call(UpdateBatch(i, writer, serial));
    auto elapsed = std::chrono::steady_clock::now() - start;
    const rq::obs::JsonValue* ok =
        response.ok() ? response->Find("ok") : nullptr;
    if (ok == nullptr || !ok->bool_value()) {
      stats->failures.fetch_add(1);
      continue;
    }
    (*latencies_ns)[static_cast<size_t>(writer) * kBatchesPerWriterPerRound +
                    static_cast<size_t>(i)] =
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count());
    stats->batches.fetch_add(1);
  }
}

void RunReader(uint16_t port, int reader, RoundStats* stats) {
  auto client = BlockingClient::Connect(kHost, port);
  if (!client.ok()) {
    stats->failures.fetch_add(1);
    return;
  }
  for (int i = 0; i < kEvalsPerReaderPerRound; ++i) {
    auto response = client->Call(EvalRequest(i, reader + i));
    const rq::obs::JsonValue* ok =
        response.ok() ? response->Find("ok") : nullptr;
    if (ok == nullptr || !ok->bool_value()) {
      stats->failures.fetch_add(1);
      continue;
    }
    stats->reads.fetch_add(1);
  }
}

double PercentileUs(std::vector<uint64_t> sorted_ns, double q) {
  sorted_ns.erase(std::remove(sorted_ns.begin(), sorted_ns.end(), 0),
                  sorted_ns.end());
  if (sorted_ns.empty()) return 0.0;
  std::sort(sorted_ns.begin(), sorted_ns.end());
  size_t index = static_cast<size_t>(q * static_cast<double>(
                                             sorted_ns.size() - 1));
  return static_cast<double>(sorted_ns[index]) / 1000.0;
}

void RunMutationRounds(benchmark::State& state, int writers, int readers,
                       size_t incr_delta_budget) {
  auto graph = GraphDb::FromText(
      "core knows c1\nc1 knows c2\nc2 knows core\n");
  if (!graph.ok()) {
    state.SkipWithError("graph parse failed");
    return;
  }
  ServerOptions options;
  options.graph = &*graph;
  options.workers = 4;
  options.max_queue_depth = 4096;
  options.incr_delta_budget = incr_delta_budget;
  QueryServer server(options);
  if (!server.Start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }

  // Seed the incremental closure so writer batches maintain it from
  // deltas (the first closure-shaped eval promotes the label).
  {
    auto seeder = BlockingClient::Connect(kHost, server.port());
    if (!seeder.ok() || !seeder->Call(EvalRequest(0, 0)).ok()) {
      state.SkipWithError("closure seeding failed");
      return;
    }
  }

  uint64_t total_batches = 0;
  uint64_t total_reads = 0;
  int total_failures = 0;
  std::vector<uint64_t> all_write_latencies_ns;
  uint64_t round = 0;
  for (auto _ : state) {
    RoundStats stats;
    std::vector<uint64_t> write_latencies_ns(
        static_cast<size_t>(writers) * kBatchesPerWriterPerRound, 0);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(writers + readers));
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back(RunWriter, server.port(), w, round,
                           &write_latencies_ns, &stats);
    }
    for (int r = 0; r < readers; ++r) {
      threads.emplace_back(RunReader, server.port(), r, &stats);
    }
    for (std::thread& t : threads) t.join();
    state.PauseTiming();
    total_batches += stats.batches.load();
    total_reads += stats.reads.load();
    total_failures += stats.failures.load();
    all_write_latencies_ns.insert(all_write_latencies_ns.end(),
                                  write_latencies_ns.begin(),
                                  write_latencies_ns.end());
    ++round;
    state.ResumeTiming();
  }
  server.DrainAndWait();

  if (total_failures > 0) {
    state.SkipWithError("requests failed outright");
    return;
  }
  state.counters["mutations_per_s"] = benchmark::Counter(
      static_cast<double>(total_batches), benchmark::Counter::kIsRate);
  state.counters["edges_per_s"] = benchmark::Counter(
      static_cast<double>(total_batches * kEdgesPerBatch),
      benchmark::Counter::kIsRate);
  state.counters["reads_per_s"] = benchmark::Counter(
      static_cast<double>(total_reads), benchmark::Counter::kIsRate);
  state.counters["write_p99_us"] = PercentileUs(all_write_latencies_ns, 0.99);
}

// The headline sweep: a fixed reader population with a growing writer
// population, incremental maintenance on (default delta budget).
void BM_GraphMutationMixed(benchmark::State& state) {
  RunMutationRounds(state, /*writers=*/static_cast<int>(state.range(0)),
                    /*readers=*/4, /*incr_delta_budget=*/1u << 20);
}
BENCHMARK(BM_GraphMutationMixed)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("writers")
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Same mix with a delta budget of 1: every maintained insert demotes its
// label, so reads pay the full product-BFS and re-seed each epoch — the
// cost of serving without incremental maintenance, for comparison.
void BM_GraphMutationFallback(benchmark::State& state) {
  RunMutationRounds(state, /*writers=*/2, /*readers=*/4,
                    /*incr_delta_budget=*/1);
}
BENCHMARK(BM_GraphMutationFallback)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

// E13 (§2.2/§2.3/§4.1): structural analysis of Datalog programs —
// recursion/monadic/linear classification, GRQ recognition, and the
// nonrecursive-unfolding blow-up the paper mentions ("a nonrecursive
// program can be expressed as a finite union of conjunctive queries",
// possibly exponentially many).
#include <benchmark/benchmark.h>

#include "datalog/unfold.h"
#include "rq/from_datalog.h"

namespace rq {
namespace {

// A layered nonrecursive program: each level joins two copies of the
// previous level, and the base has two rules — 2^depth disjuncts.
DatalogProgram DoublingProgram(size_t depth) {
  std::string text = "l0(X, Y) :- e(X, Y).\nl0(X, Y) :- f(X, Y).\n";
  for (size_t i = 1; i <= depth; ++i) {
    std::string cur = "l" + std::to_string(i);
    std::string prev = "l" + std::to_string(i - 1);
    text += cur + "(X, Z) :- " + prev + "(X, Y), " + prev + "(Y, Z).\n";
  }
  text += "?- l" + std::to_string(depth) + ".\n";
  return ParseDatalog(text).value();
}

// A chain of TC components: tc1 over e, tc2 over tc1, ...
DatalogProgram TcTower(size_t height) {
  std::string text = "tc1(X, Y) :- e(X, Y).\n";
  text += "tc1(X, Z) :- tc1(X, Y), e(Y, Z).\n";
  for (size_t i = 2; i <= height; ++i) {
    std::string cur = "tc" + std::to_string(i);
    std::string prev = "tc" + std::to_string(i - 1);
    text += cur + "(X, Y) :- " + prev + "(X, Y).\n";
    text += cur + "(X, Z) :- " + cur + "(X, Y), " + prev + "(Y, Z).\n";
  }
  text += "?- tc" + std::to_string(height) + ".\n";
  return ParseDatalog(text).value();
}

void BM_ClassificationSweep(benchmark::State& state) {
  DatalogProgram program = TcTower(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.IsRecursive());
    benchmark::DoNotOptimize(program.IsMonadic());
    benchmark::DoNotOptimize(program.IsLinear());
  }
  state.counters["rules"] = static_cast<double>(program.rules().size());
}
BENCHMARK(BM_ClassificationSweep)->DenseRange(1, 8);

void BM_GrqRecognitionTcTower(benchmark::State& state) {
  DatalogProgram program = TcTower(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    GrqAnalysis analysis = AnalyzeGrq(program);
    benchmark::DoNotOptimize(analysis.is_grq);
  }
}
BENCHMARK(BM_GrqRecognitionTcTower)->DenseRange(1, 6);

void BM_GrqExtractionTcTower(benchmark::State& state) {
  DatalogProgram program = TcTower(static_cast<size_t>(state.range(0)));
  size_t expr_size = 0;
  for (auto _ : state) {
    auto query = DatalogToRq(program);
    benchmark::DoNotOptimize(query.ok());
    if (query.ok()) expr_size = query->root->Size();
  }
  state.counters["rq_expr_size"] = static_cast<double>(expr_size);
}
BENCHMARK(BM_GrqExtractionTcTower)->DenseRange(1, 6);

void BM_NonrecursiveUnfoldBlowup(benchmark::State& state) {
  DatalogProgram program =
      DoublingProgram(static_cast<size_t>(state.range(0)));
  UnfoldLimits limits;
  limits.max_disjuncts = 100000;
  limits.max_atoms_per_disjunct = 1024;
  size_t disjuncts = 0;
  for (auto _ : state) {
    auto ucq = UnfoldNonrecursive(program, limits);
    benchmark::DoNotOptimize(ucq.ok());
    if (ucq.ok()) disjuncts = ucq->disjuncts.size();
  }
  // 2^(2^depth)-ish growth truncates quickly; the counter shows the
  // realized blow-up (2^(#base choices per leaf)).
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
}
BENCHMARK(BM_NonrecursiveUnfoldBlowup)->DenseRange(1, 4);

void BM_BoundedExpansionDepthSweep(benchmark::State& state) {
  DatalogProgram program = ParseDatalog(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    ?- tc.
  )")
                               .value();
  ExpandLimits limits;
  limits.max_depth = static_cast<size_t>(state.range(0));
  limits.max_expansions = 1u << 20;
  size_t expansions = 0;
  for (auto _ : state) {
    auto expanded = ExpandDatalog(program, limits);
    benchmark::DoNotOptimize(expanded.ok());
    if (expanded.ok()) expansions = expanded->expansions.size();
  }
  state.counters["expansions"] = static_cast<double>(expansions);
}
BENCHMARK(BM_BoundedExpansionDepthSweep)->DenseRange(2, 12);

}  // namespace
}  // namespace rq


// E14 (§4, Theorem 8): containment of GRQ programs. Compares the GRQ route
// (extract RQ, dispatch — often to the exact 2RPQ fold pipeline) against
// the generic bounded Datalog expansion fallback on the same program pairs,
// and reports verdict certainty rates.
#include <benchmark/benchmark.h>

#include "containment/containment.h"

namespace rq {
namespace {

DatalogProgram TcOver(const std::string& labels_union) {
  std::string text;
  // tc over a union of labels: one base + one step rule per label.
  for (size_t i = 0; i < labels_union.size(); ++i) {
    std::string l(1, labels_union[i]);
    text += "tc(X, Y) :- " + l + "(X, Y).\n";
    text += "tc(X, Z) :- tc(X, Y), " + l + "(Y, Z).\n";
  }
  text += "?- tc.\n";
  return ParseDatalog(text).value();
}

void BM_GrqRouteTcUnionPair(benchmark::State& state) {
  DatalogProgram q1 = TcOver("a");
  DatalogProgram q2 = TcOver("ab");
  uint64_t proved = 0;
  uint64_t checks = 0;
  for (auto _ : state) {
    auto result = CheckDatalogContainment(q1, q2);
    benchmark::DoNotOptimize(result.ok());
    if (result.ok() && result->certainty == Certainty::kProved) ++proved;
    ++checks;
  }
  state.counters["proved%"] =
      100.0 * static_cast<double>(proved) / static_cast<double>(checks);
}
BENCHMARK(BM_GrqRouteTcUnionPair);

void BM_GrqRouteRefutation(benchmark::State& state) {
  DatalogProgram q1 = TcOver("ab");
  DatalogProgram q2 = TcOver("a");
  for (auto _ : state) {
    auto result = CheckDatalogContainment(q1, q2);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_GrqRouteRefutation);

void BM_BoundedFallbackSamePair(benchmark::State& state) {
  DatalogProgram q1 = TcOver("a");
  DatalogProgram q2 = TcOver("ab");
  DatalogContainmentOptions options;
  options.try_grq = false;  // force the generic expansion fallback
  options.expand.max_depth = static_cast<size_t>(state.range(0));
  uint64_t expansions = 0;
  uint64_t checks = 0;
  for (auto _ : state) {
    auto result = CheckDatalogContainment(q1, q2, options);
    benchmark::DoNotOptimize(result.ok());
    if (result.ok()) expansions += result->expansions_checked;
    ++checks;
  }
  state.counters["expansions/check"] =
      static_cast<double>(expansions) / static_cast<double>(checks);
}
BENCHMARK(BM_BoundedFallbackSamePair)->DenseRange(2, 6);

// Label-count sweep on the GRQ route: alphabet size drives the fold
// pipeline's branching.
void BM_GrqRouteLabelSweep(benchmark::State& state) {
  const size_t labels = static_cast<size_t>(state.range(0));
  std::string alphabet_labels;
  for (size_t i = 0; i < labels; ++i) {
    alphabet_labels.push_back(static_cast<char>('a' + i));
  }
  DatalogProgram q1 = TcOver(alphabet_labels.substr(0, labels - 1));
  DatalogProgram q2 = TcOver(alphabet_labels);
  for (auto _ : state) {
    auto result = CheckDatalogContainment(q1, q2);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_GrqRouteLabelSweep)->DenseRange(2, 5);

}  // namespace
}  // namespace rq


// Closed-loop throughput/latency benchmark for the query service
// (docs/SERVING.md): an in-process QueryServer on a loopback port, driven
// by N concurrent BlockingClients that each issue a fixed mixed batch of
// requests per round and wait for every answer before the next round.
//
// Reported per benchmark (user counters in the rq-bench/1 JSON):
//   requests_per_s  closed-loop throughput across all clients
//   p50_us, p99_us  per-request wall latency percentiles
//   shed_rate       fraction of requests answered `overloaded` — zero for
//                   the throughput configs, positive by construction for
//                   the saturated ServerShedding config
//
// One /metrics HTTP scrape per round rides along, so the listener's HTTP
// path is part of the measured mix and the scrape counter lands in the
// suite's obs snapshot.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph_db.h"
#include "obs/json.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using rq::GraphDb;
using rq::server::BlockingClient;
using rq::server::HttpGet;
using rq::server::QueryServer;
using rq::server::ServerOptions;

constexpr char kHost[] = "127.0.0.1";
constexpr int kRequestsPerClientPerRound = 8;

rq::obs::JsonValue MakeRequest(int64_t id, int variant) {
  using rq::obs::JsonValue;
  JsonValue request = JsonValue::Object();
  request.Set("id", JsonValue::Number(id));
  switch (variant % 4) {
    case 0:
      request.Set("type", JsonValue::String("containment"));
      request.Set("class", JsonValue::String("rpq"));
      request.Set("q1", JsonValue::String("a a* b"));
      request.Set("q2", JsonValue::String("a* b"));
      break;
    case 1:
      request.Set("type", JsonValue::String("eval"));
      request.Set("class", JsonValue::String("path"));
      request.Set("query", JsonValue::String("knows+"));
      break;
    case 2:
      request.Set("type", JsonValue::String("equivalence"));
      request.Set("class", JsonValue::String("rpq"));
      request.Set("q1", JsonValue::String("a|b"));
      request.Set("q2", JsonValue::String("b|a"));
      break;
    default:
      request.Set("type", JsonValue::String("health"));
      break;
  }
  return request;
}

// One client's share of a round; latencies land in `latencies_ns` at a
// disjoint offset, shed responses bump `shed`.
void RunClient(uint16_t port, int client_index, bool use_sleep,
               std::vector<uint64_t>* latencies_ns, std::atomic<int>* shed,
               std::atomic<int>* failures) {
  auto client = BlockingClient::Connect(kHost, port);
  if (!client.ok()) {
    failures->fetch_add(kRequestsPerClientPerRound);
    return;
  }
  for (int i = 0; i < kRequestsPerClientPerRound; ++i) {
    int64_t id = client_index * 1000 + i;
    rq::obs::JsonValue request;
    if (use_sleep) {
      request = rq::obs::JsonValue::Object();
      request.Set("type", rq::obs::JsonValue::String("sleep"));
      request.Set("id", rq::obs::JsonValue::Number(id));
      request.Set("sleep_ms", rq::obs::JsonValue::Number(int64_t{1}));
    } else {
      request = MakeRequest(id, i);
    }
    auto start = std::chrono::steady_clock::now();
    auto response = client->Call(request);
    auto elapsed = std::chrono::steady_clock::now() - start;
    if (!response.ok()) {
      failures->fetch_add(1);
      continue;
    }
    (*latencies_ns)[static_cast<size_t>(client_index) *
                        kRequestsPerClientPerRound +
                    static_cast<size_t>(i)] =
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count());
    const rq::obs::JsonValue* ok = response->Find("ok");
    if (ok != nullptr && !ok->bool_value()) {
      const rq::obs::JsonValue* error = response->Find("error");
      if (error != nullptr && error->string_value() == "overloaded") {
        shed->fetch_add(1);
      } else {
        failures->fetch_add(1);
      }
    }
  }
}

double PercentileUs(std::vector<uint64_t> sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  std::sort(sorted_ns.begin(), sorted_ns.end());
  size_t index = static_cast<size_t>(q * static_cast<double>(
                                             sorted_ns.size() - 1));
  return static_cast<double>(sorted_ns[index]) / 1000.0;
}

void RunRounds(benchmark::State& state, const ServerOptions& base_options,
               int clients, bool use_sleep) {
  auto graph = GraphDb::FromText(
      "a knows b\nb knows c\nc knows d\nd knows a\n");
  if (!graph.ok()) {
    state.SkipWithError("graph parse failed");
    return;
  }
  ServerOptions options = base_options;
  options.graph = &*graph;
  QueryServer server(options);
  if (!server.Start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }

  std::vector<uint64_t> all_latencies_ns;
  int64_t total_requests = 0;
  int total_shed = 0;
  int total_failures = 0;
  for (auto _ : state) {
    std::vector<uint64_t> latencies_ns(
        static_cast<size_t>(clients) * kRequestsPerClientPerRound, 0);
    std::atomic<int> shed{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back(RunClient, server.port(), c, use_sleep,
                           &latencies_ns, &shed, &failures);
    }
    // The /metrics HTTP path shares the listener; scrape it once per
    // round so serving and scraping are measured together.
    auto scrape = HttpGet(kHost, server.port(), "/metrics");
    for (std::thread& t : threads) t.join();
    state.PauseTiming();
    if (!scrape.ok()) ++total_failures;
    for (uint64_t ns : latencies_ns) {
      if (ns > 0) all_latencies_ns.push_back(ns);
    }
    total_requests += clients * kRequestsPerClientPerRound;
    total_shed += shed.load();
    total_failures += failures.load();
    state.ResumeTiming();
  }
  server.DrainAndWait();

  if (total_failures > 0) {
    state.SkipWithError("requests failed outright");
    return;
  }
  state.counters["requests_per_s"] = benchmark::Counter(
      static_cast<double>(total_requests), benchmark::Counter::kIsRate);
  state.counters["p50_us"] = PercentileUs(all_latencies_ns, 0.50);
  state.counters["p99_us"] = PercentileUs(all_latencies_ns, 0.99);
  state.counters["shed_rate"] =
      total_requests > 0
          ? static_cast<double>(total_shed) /
                static_cast<double>(total_requests)
          : 0.0;
}

// Headroom configs: enough workers and queue that nothing is shed; the
// numbers are pure service throughput/latency.
void BM_ServerThroughput(benchmark::State& state) {
  ServerOptions options;
  options.workers = 4;
  options.max_queue_depth = 4096;
  RunRounds(state, options, static_cast<int>(state.range(0)),
            /*use_sleep=*/false);
}
BENCHMARK(BM_ServerThroughput)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->ArgName("clients")
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Saturated config: one worker, a queue of two, and deliberately slow
// (1 ms sleep) requests from 16 clients — admission control must shed,
// and the interesting numbers are the shed rate and the latency of the
// requests that do get through.
void BM_ServerShedding(benchmark::State& state) {
  ServerOptions options;
  options.workers = 1;
  options.max_queue_depth = 2;
  options.enable_sleep = true;
  RunRounds(state, options, /*clients=*/16, /*use_sleep=*/true);
}
BENCHMARK(BM_ServerShedding)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

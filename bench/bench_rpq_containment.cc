// E1 (§3.2, Lemma 1 + [42]): RPQ containment via regular-language
// containment. Compares the paper's on-the-fly product-with-complement
// search (PSPACE-friendly: materializes only visited subsets) against the
// naive explicit determinize-complement-intersect route, across query
// sizes. Counters report product states explored.
#include <benchmark/benchmark.h>

#include "automata/containment.h"
#include "common/rng.h"
#include "regex/regex.h"

namespace rq {
namespace {

Alphabet MakeAlphabet(size_t labels) {
  Alphabet alphabet;
  for (size_t i = 0; i < labels; ++i) {
    alphabet.InternLabel("l" + std::to_string(i));
  }
  return alphabet;
}

// A pair of related random regexes: q2 is a union of q1 with more noise,
// so containments are sometimes positive.
std::pair<RegexPtr, RegexPtr> RelatedPair(const Alphabet& alphabet,
                                          int depth, Rng& rng) {
  RegexPtr r1 = RandomRegex(alphabet, depth, /*allow_inverse=*/false, rng);
  RegexPtr noise = RandomRegex(alphabet, depth, /*allow_inverse=*/false,
                               rng);
  RegexPtr r2 = rng.Chance(0.5) ? Regex::Union({r1, noise}) : noise;
  return {r1, r2};
}

void BM_RpqContainmentOnTheFly(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Alphabet alphabet = MakeAlphabet(3);
  Rng rng(42);
  uint64_t explored = 0;
  uint64_t checks = 0;
  uint64_t contained = 0;
  for (auto _ : state) {
    auto [r1, r2] = RelatedPair(alphabet, depth, rng);
    Nfa n1 = r1->ToNfa(6);
    Nfa n2 = r2->ToNfa(6);
    LanguageContainmentResult result = CheckLanguageContainment(n1, n2);
    benchmark::DoNotOptimize(result.contained);
    explored += result.explored_states;
    contained += result.contained ? 1 : 0;
    ++checks;
  }
  state.counters["explored/check"] =
      static_cast<double>(explored) / static_cast<double>(checks);
  state.counters["contained%"] =
      100.0 * static_cast<double>(contained) / static_cast<double>(checks);
}
BENCHMARK(BM_RpqContainmentOnTheFly)->DenseRange(2, 6);

void BM_RpqContainmentExplicit(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Alphabet alphabet = MakeAlphabet(3);
  Rng rng(42);
  uint64_t explored = 0;
  uint64_t checks = 0;
  for (auto _ : state) {
    auto [r1, r2] = RelatedPair(alphabet, depth, rng);
    Nfa n1 = r1->ToNfa(6);
    Nfa n2 = r2->ToNfa(6);
    LanguageContainmentResult result =
        CheckLanguageContainmentExplicit(n1, n2);
    benchmark::DoNotOptimize(result.contained);
    explored += result.explored_states;
    ++checks;
  }
  state.counters["product_states/check"] =
      static_cast<double>(explored) / static_cast<double>(checks);
}
BENCHMARK(BM_RpqContainmentExplicit)->DenseRange(2, 6);

// Alphabet-size sensitivity: the complement side branches per symbol.
void BM_RpqContainmentAlphabetSweep(benchmark::State& state) {
  const size_t labels = static_cast<size_t>(state.range(0));
  Alphabet alphabet = MakeAlphabet(labels);
  Rng rng(7);
  for (auto _ : state) {
    auto [r1, r2] = RelatedPair(alphabet, 4, rng);
    uint32_t k = static_cast<uint32_t>(alphabet.num_symbols());
    LanguageContainmentResult result =
        CheckLanguageContainment(r1->ToNfa(k), r2->ToNfa(k));
    benchmark::DoNotOptimize(result.contained);
  }
}
BENCHMARK(BM_RpqContainmentAlphabetSweep)->DenseRange(1, 5);

}  // namespace
}  // namespace rq


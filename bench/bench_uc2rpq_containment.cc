// E8 (§3.3, Theorem 6): UC2RPQ containment. The exact problem is
// EXPSPACE-complete; this harness measures (a) the exact single-atom 2RPQ
// dispatch, (b) the exact expansion procedure on finite-language queries as
// atom count grows, and (c) the bounded search on infinite languages as the
// word bound grows.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crpq/crpq.h"

namespace rq {
namespace {

void BM_SingleAtomDispatch(benchmark::State& state) {
  Alphabet alphabet;
  auto q1 = ParseUc2Rpq("q(x, y) :- (p (q q-)*)(x, y)", &alphabet);
  auto q2 = ParseUc2Rpq("q(x, y) :- (p | p q q-)(x, y)", &alphabet);
  RQ_CHECK(q1.ok() && q2.ok());
  for (auto _ : state) {
    auto result = CheckUc2RpqContainment(*q1, *q2, alphabet);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_SingleAtomDispatch);

// Finite-language conjunctive queries: exact expansion test, atom sweep.
void BM_FiniteLanguageExactAtomSweep(benchmark::State& state) {
  const size_t atoms = static_cast<size_t>(state.range(0));
  Alphabet alphabet;
  alphabet.InternLabel("a");
  alphabet.InternLabel("b");
  Rng rng(atoms * 17 + 1);
  // Chain query with small finite languages per atom.
  auto make_query = [&](Rng& r) {
    Crpq q;
    q.num_vars = static_cast<uint32_t>(atoms + 1);
    q.head = {0, static_cast<VarId>(atoms)};
    for (size_t i = 0; i < atoms; ++i) {
      const char* options[] = {"a", "b", "a b", "a | b", "a b-", "b?"};
      RegexPtr re =
          ParseRegex(options[r.Below(6)], &alphabet).value();
      q.atoms.push_back(
          {re, static_cast<VarId>(i), static_cast<VarId>(i + 1)});
    }
    Uc2Rpq u;
    u.disjuncts.push_back(std::move(q));
    return u;
  };
  uint64_t expansions = 0;
  uint64_t checks = 0;
  for (auto _ : state) {
    Uc2Rpq q1 = make_query(rng);
    Uc2Rpq q2 = make_query(rng);
    auto result = CheckUc2RpqContainment(q1, q2, alphabet);
    benchmark::DoNotOptimize(result.ok());
    if (result.ok()) expansions += result->expansions_checked;
    ++checks;
  }
  state.counters["expansions/check"] =
      static_cast<double>(expansions) / static_cast<double>(checks);
}
BENCHMARK(BM_FiniteLanguageExactAtomSweep)->DenseRange(1, 6);

// Bounded search on infinite languages: cost vs word-length bound.
void BM_BoundedSearchWordLengthSweep(benchmark::State& state) {
  const size_t max_len = static_cast<size_t>(state.range(0));
  Alphabet alphabet;
  auto q1 = ParseUc2Rpq(
      "q(x, y) :- (a+)(x, z), (b+)(z, y)\n"
      "q(x, y) :- (b+)(x, z), (a+)(z, y)",
      &alphabet);
  auto q2 = ParseUc2Rpq("q(x, y) :- ((a | b)+)(x, y)", &alphabet);
  RQ_CHECK(q1.ok() && q2.ok());
  CrpqContainmentOptions options;
  options.max_word_length = max_len;
  uint64_t expansions = 0;
  uint64_t iterations = 0;
  for (auto _ : state) {
    auto result = CheckUc2RpqContainment(*q1, *q2, alphabet, options);
    benchmark::DoNotOptimize(result.ok());
    if (result.ok()) expansions += result->expansions_checked;
    ++iterations;
  }
  state.counters["expansions/check"] =
      static_cast<double>(expansions) / static_cast<double>(iterations);
}
BENCHMARK(BM_BoundedSearchWordLengthSweep)->DenseRange(1, 6);

// Paper Example 1: the triangle pattern vs its cyclic variant.
void BM_PaperExampleOneUnion(benchmark::State& state) {
  Alphabet alphabet;
  auto q1 = ParseUc2Rpq("q(x, y) :- (r)(x, y), (r)(x, z), (r)(y, z)",
                        &alphabet);
  auto q2 = ParseUc2Rpq(
      "q(x, y) :- (r)(x, y), (r)(x, z), (r)(y, z)\n"
      "q(x, y) :- (r)(x, y), (r)(y, z), (r)(z, x)",
      &alphabet);
  RQ_CHECK(q1.ok() && q2.ok());
  for (auto _ : state) {
    auto result = CheckUc2RpqContainment(*q1, *q2, alphabet);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_PaperExampleOneUnion);

}  // namespace
}  // namespace rq


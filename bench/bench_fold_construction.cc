// E3 (Lemma 3): the fold construction produces a 2NFA with exactly
// n·(|Σ±|+1) states. Sweeps NFA size and alphabet size, reporting measured
// state counts against the lemma's bound (the ratio should be 1.0) and the
// transition blow-up, plus construction throughput.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "regex/regex.h"
#include "twoway/fold.h"

namespace rq {
namespace {

Alphabet MakeAlphabet(size_t labels) {
  Alphabet alphabet;
  for (size_t i = 0; i < labels; ++i) {
    alphabet.InternLabel("l" + std::to_string(i));
  }
  return alphabet;
}

void BM_FoldConstructionSizeSweep(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Alphabet alphabet = MakeAlphabet(2);
  const uint32_t k = static_cast<uint32_t>(alphabet.num_symbols());
  Rng rng(1);
  // Pre-generate automata outside the timed loop.
  std::vector<Nfa> inputs;
  for (int i = 0; i < 32; ++i) {
    RegexPtr re = RandomRegex(alphabet, depth, /*allow_inverse=*/true, rng);
    inputs.push_back(re->ToNfa(k).WithoutEpsilons().Trimmed());
  }
  uint64_t nfa_states = 0;
  uint64_t fold_states = 0;
  uint64_t fold_transitions = 0;
  uint64_t built = 0;
  size_t index = 0;
  for (auto _ : state) {
    const Nfa& nfa = inputs[index++ % inputs.size()];
    TwoNfa fold2 = FoldTwoNfa(nfa);
    benchmark::DoNotOptimize(fold2.num_states());
    nfa_states += nfa.num_states();
    fold_states += fold2.num_states();
    fold_transitions += fold2.CountTransitions();
    ++built;
  }
  double bound = static_cast<double>(nfa_states) * (k + 1);
  state.counters["states/bound"] =
      static_cast<double>(fold_states) / bound;  // Lemma 3: exactly 1.0
  state.counters["avg_nfa_states"] =
      static_cast<double>(nfa_states) / static_cast<double>(built);
  state.counters["avg_fold_states"] =
      static_cast<double>(fold_states) / static_cast<double>(built);
  state.counters["avg_fold_transitions"] =
      static_cast<double>(fold_transitions) / static_cast<double>(built);
}
BENCHMARK(BM_FoldConstructionSizeSweep)->DenseRange(1, 5);

void BM_FoldConstructionAlphabetSweep(benchmark::State& state) {
  const size_t labels = static_cast<size_t>(state.range(0));
  Alphabet alphabet = MakeAlphabet(labels);
  const uint32_t k = static_cast<uint32_t>(alphabet.num_symbols());
  Rng rng(2);
  std::vector<Nfa> inputs;
  for (int i = 0; i < 16; ++i) {
    RegexPtr re = RandomRegex(alphabet, 3, /*allow_inverse=*/true, rng);
    inputs.push_back(re->ToNfa(k).WithoutEpsilons().Trimmed());
  }
  uint64_t fold_states = 0;
  uint64_t nfa_states = 0;
  size_t index = 0;
  for (auto _ : state) {
    const Nfa& nfa = inputs[index++ % inputs.size()];
    TwoNfa fold2 = FoldTwoNfa(nfa);
    benchmark::DoNotOptimize(fold2.num_states());
    fold_states += fold2.num_states();
    nfa_states += nfa.num_states();
  }
  state.counters["states/bound"] =
      static_cast<double>(fold_states) /
      (static_cast<double>(nfa_states) * (k + 1));
}
BENCHMARK(BM_FoldConstructionAlphabetSweep)->DenseRange(1, 6);

// Membership through the fold 2NFA: the cost of deciding u ∈ fold(L).
void BM_FoldMembership(benchmark::State& state) {
  const size_t word_len = static_cast<size_t>(state.range(0));
  Alphabet alphabet = MakeAlphabet(2);
  const uint32_t k = static_cast<uint32_t>(alphabet.num_symbols());
  Rng rng(3);
  RegexPtr re = ParseRegex("(l0 (l1 l1-)* l0)+", &alphabet).value();
  Nfa nfa = re->ToNfa(k).WithoutEpsilons().Trimmed();
  TwoNfa fold2 = FoldTwoNfa(nfa);
  std::vector<Symbol> word;
  for (size_t i = 0; i < word_len; ++i) {
    word.push_back(static_cast<Symbol>(rng.Below(k)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fold2.Accepts(word));
  }
}
BENCHMARK(BM_FoldMembership)->RangeMultiplier(4)->Range(4, 256);

}  // namespace
}  // namespace rq


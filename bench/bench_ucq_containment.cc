// E7 (§2.3, Sagiv-Yannakakis [50]): UCQ containment — every left disjunct
// must map into some right disjunct. Sweeps the number of disjuncts on both
// sides (the quadratic disjunct-pair structure dominates).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "relational/cq.h"

namespace rq {
namespace {

UnionOfConjunctiveQueries RandomUcq(size_t disjuncts, size_t atoms,
                                    Rng& rng) {
  UnionOfConjunctiveQueries out;
  for (size_t i = 0; i < disjuncts; ++i) {
    out.disjuncts.push_back(RandomBinaryCq(atoms, atoms + 1, 2, rng));
  }
  return out;
}

void BM_UcqContainmentDisjunctSweep(benchmark::State& state) {
  const size_t disjuncts = static_cast<size_t>(state.range(0));
  Rng rng(disjuncts * 31 + 7);
  uint64_t checks = 0;
  uint64_t contained = 0;
  for (auto _ : state) {
    UnionOfConjunctiveQueries q1 = RandomUcq(disjuncts, 3, rng);
    UnionOfConjunctiveQueries q2 = RandomUcq(disjuncts, 3, rng);
    auto result = UcqContained(q1, q2);
    benchmark::DoNotOptimize(result.ok());
    if (result.ok() && *result) ++contained;
    ++checks;
  }
  state.counters["contained%"] =
      100.0 * static_cast<double>(contained) / static_cast<double>(checks);
}
BENCHMARK(BM_UcqContainmentDisjunctSweep)->DenseRange(1, 8);

// Positive instances: q2 = q1 plus extra disjuncts (left ⊑ right by
// construction) — the procedure must find a hom for every left disjunct.
void BM_UcqContainmentPositive(benchmark::State& state) {
  const size_t disjuncts = static_cast<size_t>(state.range(0));
  Rng rng(disjuncts * 13 + 3);
  for (auto _ : state) {
    UnionOfConjunctiveQueries q1 = RandomUcq(disjuncts, 3, rng);
    UnionOfConjunctiveQueries q2 = q1;
    UnionOfConjunctiveQueries extra = RandomUcq(2, 3, rng);
    for (auto& d : extra.disjuncts) q2.disjuncts.push_back(d);
    auto result = UcqContained(q1, q2);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_UcqContainmentPositive)->DenseRange(1, 8);

}  // namespace
}  // namespace rq


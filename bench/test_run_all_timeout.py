#!/usr/bin/env python3
"""Unit tests for the bench/run_all.sh --timeout guard, driven by fake
bench_* binaries (no real benchmarks run). Registered with ctest as
bench_run_all_timeout_unit; also runnable directly:

    python3 bench/test_run_all_timeout.py
"""

import json
import os
import stat
import subprocess
import sys
import tempfile
import unittest

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
RUN_ALL = os.path.join(BENCH_DIR, "run_all.sh")

# A fake harness binary: answers --json <path> with a minimal but valid
# "rq-bench/1" report whose counters satisfy the suite's subsystem check.
OK_REPORT = {
    "schema": "rq-bench/1",
    "binary": "bench_ok",
    "smoke": False,
    "cache": False,
    "benchmarks": [
        {"name": "W/jobs:1", "iterations": 1, "real_time_ns": 100.0,
         "cpu_time_ns": 100.0, "counters": {}}
    ],
    "obs": {"counters": [
        {"name": "containment.checks", "value": 1},
        {"name": "fold.folds", "value": 1},
        {"name": "complement.builds", "value": 1},
        {"name": "datalog.rounds", "value": 1},
    ]},
}

OK_SCRIPT = """#!/usr/bin/env bash
# Fake bench binary: emit a fixed report at the path following --json.
json=""
while [[ $# -gt 0 ]]; do
  if [[ "$1" == "--json" ]]; then json="$2"; shift 2; else shift; fi
done
cat > "$json" <<'EOF'
%s
EOF
"""

HANG_SCRIPT = """#!/usr/bin/env bash
# Fake hung bench binary: never returns on its own. exec so the sleep IS
# the process timeout kills — no orphan holding the output pipe open.
exec sleep 600
"""


def write_executable(path, text):
    with open(path, "w") as f:
        f.write(text)
    os.chmod(path, os.stat(path).st_mode | stat.S_IXUSR | stat.S_IXGRP)


def run(build_dir, *flags):
    out = os.path.join(build_dir, "BENCH_results.json")
    proc = subprocess.run(
        [RUN_ALL, "--build-dir", build_dir, "--out", out, *flags],
        capture_output=True, text=True)
    return proc, out


class RunAllTimeoutTest(unittest.TestCase):
    def test_hung_binary_fails_the_run_with_timeout_marker(self):
        with tempfile.TemporaryDirectory() as build_dir:
            write_executable(os.path.join(build_dir, "bench_hang"),
                             HANG_SCRIPT)
            proc, _ = run(build_dir, "--timeout", "1")
            self.assertNotEqual(proc.returncode, 0)
            self.assertIn("TIMEOUT: bench_hang", proc.stderr)

    def test_fast_binary_passes_under_timeout(self):
        with tempfile.TemporaryDirectory() as build_dir:
            write_executable(
                os.path.join(build_dir, "bench_ok"),
                OK_SCRIPT % json.dumps(OK_REPORT, indent=2))
            proc, out = run(build_dir, "--timeout", "60")
            self.assertEqual(proc.returncode, 0, proc.stderr)
            self.assertNotIn("TIMEOUT", proc.stderr)
            with open(out) as f:
                suite = json.load(f)
            self.assertEqual(suite["schema"], "rq-bench-suite/2")
            self.assertEqual(len(suite["binaries"]), 1)

    def test_no_timeout_flag_keeps_legacy_behavior(self):
        with tempfile.TemporaryDirectory() as build_dir:
            write_executable(
                os.path.join(build_dir, "bench_ok"),
                OK_SCRIPT % json.dumps(OK_REPORT, indent=2))
            proc, _ = run(build_dir)
            self.assertEqual(proc.returncode, 0, proc.stderr)


if __name__ == "__main__":
    sys.exit(unittest.main())

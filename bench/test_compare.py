#!/usr/bin/env python3
"""Unit tests for bench/compare.py on fixture suite JSON (no benchmarks are
run). Registered with ctest as bench_compare_unit; also runnable directly:

    python3 bench/test_compare.py
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
COMPARE = os.path.join(BENCH_DIR, "compare.py")


def suite(binaries, schema="rq-bench-suite/2"):
    return {
        "schema": schema,
        "smoke": True,
        "cache": False,
        "binaries": [
            {
                "schema": "rq-bench/1",
                "binary": binary,
                "benchmarks": [
                    {"name": name, "iterations": 10, "real_time_ns": ns,
                     "cpu_time_ns": ns, "counters": {}}
                    for name, ns in benchmarks.items()
                ],
            }
            for binary, benchmarks in binaries.items()
        ],
    }


BASELINE = suite({
    "bench_fold": {"BM_Fold/1": 1000.0, "BM_Fold/2": 2000.0},
    "bench_datalog": {"BM_Eval": 5000.0},
})


class CompareTest(unittest.TestCase):
    def run_compare(self, baseline, current, *flags):
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            cur_path = os.path.join(tmp, "cur.json")
            out_path = os.path.join(tmp, "out.json")
            with open(base_path, "w") as f:
                json.dump(baseline, f)
            with open(cur_path, "w") as f:
                json.dump(current, f)
            proc = subprocess.run(
                [sys.executable, COMPARE, base_path, cur_path,
                 "--json-out", out_path, *flags],
                capture_output=True, text=True)
            result = None
            if os.path.exists(out_path):
                with open(out_path) as f:
                    result = json.load(f)
            return proc, result

    def test_identical_suites_pass(self):
        proc, result = self.run_compare(BASELINE, copy.deepcopy(BASELINE))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertFalse(result["regressed"])
        self.assertEqual(result["missing_binaries"], [])
        self.assertAlmostEqual(result["overall_geomean_ratio"], 1.0)

    def test_missing_binary_fails(self):
        current = suite({"bench_fold": {"BM_Fold/1": 1000.0,
                                        "BM_Fold/2": 2000.0}})
        proc, result = self.run_compare(BASELINE, current)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("bench_datalog", proc.stderr)
        self.assertEqual(result["missing_binaries"], ["bench_datalog"])

    def test_missing_binary_warn_only_passes(self):
        current = suite({"bench_fold": {"BM_Fold/1": 1000.0,
                                        "BM_Fold/2": 2000.0}})
        proc, result = self.run_compare(BASELINE, current, "--warn-only")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual(result["missing_binaries"], ["bench_datalog"])

    def test_all_binaries_missing_still_fails(self):
        current = suite({"bench_new": {"BM_Other": 100.0}})
        proc, result = self.run_compare(BASELINE, current)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertEqual(result["missing_binaries"],
                         ["bench_datalog", "bench_fold"])

    def test_regression_beyond_threshold_fails(self):
        current = suite({
            "bench_fold": {"BM_Fold/1": 1500.0, "BM_Fold/2": 3000.0},
            "bench_datalog": {"BM_Eval": 5000.0},
        })
        proc, result = self.run_compare(BASELINE, current)
        self.assertEqual(proc.returncode, 1)
        self.assertTrue(result["regressed"])
        rows = {b["binary"]: b for b in result["binaries"]}
        self.assertTrue(rows["bench_fold"]["regressed"])
        self.assertFalse(rows["bench_datalog"]["regressed"])
        self.assertAlmostEqual(rows["bench_fold"]["geomean_ratio"], 1.5)

    def test_regression_within_threshold_passes(self):
        current = suite({
            "bench_fold": {"BM_Fold/1": 1050.0, "BM_Fold/2": 2100.0},
            "bench_datalog": {"BM_Eval": 5000.0},
        })
        proc, result = self.run_compare(BASELINE, current)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertFalse(result["regressed"])

    def test_renamed_benchmark_is_unmatched_not_missing(self):
        current = suite({
            "bench_fold": {"BM_Fold/1": 1000.0, "BM_FoldRenamed": 2000.0},
            "bench_datalog": {"BM_Eval": 5000.0},
        })
        proc, result = self.run_compare(BASELINE, current)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual(result["missing_binaries"], [])
        self.assertIn("bench_fold:BM_Fold/2", result["unmatched"])
        self.assertIn("bench_fold:BM_FoldRenamed", result["unmatched"])

    def test_v1_schema_accepted(self):
        base = suite({"bench_fold": {"BM_Fold/1": 1000.0}},
                     schema="rq-bench-suite/1")
        cur = suite({"bench_fold": {"BM_Fold/1": 1000.0}})
        proc, _ = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_unknown_schema_rejected(self):
        bad = suite({"bench_fold": {"BM_Fold/1": 1000.0}},
                    schema="rq-bench-suite/99")
        proc, _ = self.run_compare(bad, copy.deepcopy(BASELINE))
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()

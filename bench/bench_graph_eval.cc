// E9 (§3.1/§3.3): query evaluation over graph databases — RPQ and 2RPQ via
// product-automaton BFS over immutable CSR snapshots, C2RPQ via
// instantiate-then-join — as the graph grows. Throughput is reported per
// evaluated query over the whole graph (all-pairs semantics). The
// multi-source family sweeps the worker count (names embed jobs:N) so
// bench/run_all.sh can report the parallel speedup headline
// (graph_eval_speedup: jobs:1 vs jobs:8 real time).
#include <benchmark/benchmark.h>

#include <numeric>

#include "crpq/crpq.h"
#include "graph/generators.h"
#include "graph/snapshot.h"
#include "pathquery/path_query.h"

namespace rq {
namespace {

void BM_RpqEvalGraphSweep(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  GraphDb db = RandomGraph(nodes, nodes * 3, {"a", "b", "c"}, 42);
  auto q = ParsePathQuery("a (b | c)* a", &db.alphabet());
  RQ_CHECK(q.ok());
  size_t answers = 0;
  for (auto _ : state) {
    auto pairs = EvalPathQuery(db, *q->regex);
    benchmark::DoNotOptimize(pairs.size());
    answers = pairs.size();
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_RpqEvalGraphSweep)->RangeMultiplier(2)->Range(64, 1024);

void BM_TwoRpqEvalGraphSweep(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  GraphDb db = RandomGraph(nodes, nodes * 3, {"a", "b", "c"}, 42);
  auto q = ParsePathQuery("a (b- | c)* a-", &db.alphabet());
  RQ_CHECK(q.ok());
  for (auto _ : state) {
    auto pairs = EvalPathQuery(db, *q->regex);
    benchmark::DoNotOptimize(pairs.size());
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_TwoRpqEvalGraphSweep)->RangeMultiplier(2)->Range(64, 1024);

void BM_TransitiveClosureRpqSweep(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  GraphDb db = RandomGraph(nodes, nodes * 2, {"e"}, 7);
  auto q = ParsePathQuery("e+", &db.alphabet());
  RQ_CHECK(q.ok());
  for (auto _ : state) {
    auto pairs = EvalPathQuery(db, *q->regex);
    benchmark::DoNotOptimize(pairs.size());
  }
}
BENCHMARK(BM_TransitiveClosureRpqSweep)->RangeMultiplier(2)->Range(64, 512);

void BM_C2RpqEvalSocialNetwork(benchmark::State& state) {
  const size_t people = static_cast<size_t>(state.range(0));
  GraphDb net = SocialNetwork(people, people / 10 + 1, people / 2, 2026);
  auto q = ParseCrpq(
      "q(x, y) :- (knows+)(x, y), (member)(x, g), (member)(y, g)",
      &net.alphabet());
  RQ_CHECK(q.ok());
  size_t answers = 0;
  for (auto _ : state) {
    Relation result = EvalCrpq(net, *q).value();
    benchmark::DoNotOptimize(result.size());
    answers = result.size();
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_C2RpqEvalSocialNetwork)->RangeMultiplier(2)->Range(50, 400);

// Single-source evaluation (the common interactive case).
void BM_RpqEvalSingleSource(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  GraphDb db = RandomGraph(nodes, nodes * 3, {"a", "b"}, 11);
  auto q = ParsePathQuery("a (a | b)*", &db.alphabet());
  RQ_CHECK(q.ok());
  Nfa nfa = q->regex
                ->ToNfa(static_cast<uint32_t>(db.alphabet().num_symbols()))
                .WithoutEpsilons();
  for (auto _ : state) {
    auto reached = EvalPathQueryFrom(db, nfa, 0);
    benchmark::DoNotOptimize(reached.size());
  }
}
BENCHMARK(BM_RpqEvalSingleSource)->RangeMultiplier(4)->Range(256, 16384);

// Snapshot construction cost: the one-time freeze callers pay per
// evaluation batch (counting sort + per-bucket sort/dedup).
void BM_SnapshotBuild(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  GraphDb db = RandomGraph(nodes, nodes * 4, {"a", "b", "c"}, 3);
  for (auto _ : state) {
    GraphSnapshotPtr snap = db.Snapshot();
    benchmark::DoNotOptimize(snap->num_edges());
  }
  state.counters["edges"] = static_cast<double>(db.num_edges());
}
BENCHMARK(BM_SnapshotBuild)->RangeMultiplier(4)->Range(1024, 16384);

// Multi-source batch evaluation: every node is a source, sources fan out
// across the worker pool over one shared snapshot. The jobs sweep is the
// headline parallelism measurement (speedup tracks available cores; on a
// single-core host jobs:8 ~= jobs:1 plus pool overhead).
void BM_MultiSourceRpqEval(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  const unsigned jobs = static_cast<unsigned>(state.range(1));
  GraphDb db = RandomGraph(nodes, nodes * 4, {"a", "b", "c"}, 42);
  auto q = ParsePathQuery("a (b | c)* a", &db.alphabet());
  RQ_CHECK(q.ok());
  const Nfa nfa =
      q->regex->ToNfa(static_cast<uint32_t>(db.alphabet().num_symbols()))
          .WithoutEpsilons();
  const GraphSnapshotPtr snapshot = db.Snapshot();
  std::vector<NodeId> sources(nodes);
  std::iota(sources.begin(), sources.end(), 0);
  size_t answers = 0;
  for (auto _ : state) {
    auto per_source = EvalPathQueryFromSources(*snapshot, nfa, sources,
                                               PathEvalOptions{.jobs = jobs});
    benchmark::DoNotOptimize(per_source.size());
    answers = 0;
    for (const auto& a : per_source) answers += a.size();
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MultiSourceRpqEval)
    ->ArgNames({"nodes", "jobs"})
    ->Args({2048, 1})
    ->Args({2048, 2})
    ->Args({2048, 4})
    ->Args({2048, 8})
    ->Args({8192, 1})
    ->Args({8192, 8});

// Same sweep with inverse symbols in the query (2RPQ semipath semantics).
void BM_MultiSourceTwoRpqEval(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  const unsigned jobs = static_cast<unsigned>(state.range(1));
  GraphDb db = RandomGraph(nodes, nodes * 4, {"a", "b", "c"}, 42);
  auto q = ParsePathQuery("a (b- | c)* a-", &db.alphabet());
  RQ_CHECK(q.ok());
  const Nfa nfa =
      q->regex->ToNfa(static_cast<uint32_t>(db.alphabet().num_symbols()))
          .WithoutEpsilons();
  const GraphSnapshotPtr snapshot = db.Snapshot();
  std::vector<NodeId> sources(nodes);
  std::iota(sources.begin(), sources.end(), 0);
  for (auto _ : state) {
    auto per_source = EvalPathQueryFromSources(*snapshot, nfa, sources,
                                               PathEvalOptions{.jobs = jobs});
    benchmark::DoNotOptimize(per_source.size());
  }
}
BENCHMARK(BM_MultiSourceTwoRpqEval)
    ->ArgNames({"nodes", "jobs"})
    ->Args({2048, 1})
    ->Args({2048, 8});

}  // namespace
}  // namespace rq


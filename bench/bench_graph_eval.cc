// E9 (§3.1/§3.3): query evaluation over graph databases — RPQ and 2RPQ via
// product-automaton BFS, C2RPQ via instantiate-then-join — as the graph
// grows. Throughput is reported per evaluated query over the whole graph
// (all-pairs semantics).
#include <benchmark/benchmark.h>

#include "crpq/crpq.h"
#include "graph/generators.h"
#include "pathquery/path_query.h"

namespace rq {
namespace {

void BM_RpqEvalGraphSweep(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  GraphDb db = RandomGraph(nodes, nodes * 3, {"a", "b", "c"}, 42);
  auto q = ParsePathQuery("a (b | c)* a", &db.alphabet());
  RQ_CHECK(q.ok());
  size_t answers = 0;
  for (auto _ : state) {
    auto pairs = EvalPathQuery(db, *q->regex);
    benchmark::DoNotOptimize(pairs.size());
    answers = pairs.size();
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_RpqEvalGraphSweep)->RangeMultiplier(2)->Range(64, 1024);

void BM_TwoRpqEvalGraphSweep(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  GraphDb db = RandomGraph(nodes, nodes * 3, {"a", "b", "c"}, 42);
  auto q = ParsePathQuery("a (b- | c)* a-", &db.alphabet());
  RQ_CHECK(q.ok());
  for (auto _ : state) {
    auto pairs = EvalPathQuery(db, *q->regex);
    benchmark::DoNotOptimize(pairs.size());
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_TwoRpqEvalGraphSweep)->RangeMultiplier(2)->Range(64, 1024);

void BM_TransitiveClosureRpqSweep(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  GraphDb db = RandomGraph(nodes, nodes * 2, {"e"}, 7);
  auto q = ParsePathQuery("e+", &db.alphabet());
  RQ_CHECK(q.ok());
  for (auto _ : state) {
    auto pairs = EvalPathQuery(db, *q->regex);
    benchmark::DoNotOptimize(pairs.size());
  }
}
BENCHMARK(BM_TransitiveClosureRpqSweep)->RangeMultiplier(2)->Range(64, 512);

void BM_C2RpqEvalSocialNetwork(benchmark::State& state) {
  const size_t people = static_cast<size_t>(state.range(0));
  GraphDb net = SocialNetwork(people, people / 10 + 1, people / 2, 2026);
  auto q = ParseCrpq(
      "q(x, y) :- (knows+)(x, y), (member)(x, g), (member)(y, g)",
      &net.alphabet());
  RQ_CHECK(q.ok());
  size_t answers = 0;
  for (auto _ : state) {
    Relation result = EvalCrpq(net, *q).value();
    benchmark::DoNotOptimize(result.size());
    answers = result.size();
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_C2RpqEvalSocialNetwork)->RangeMultiplier(2)->Range(50, 400);

// Single-source evaluation (the common interactive case).
void BM_RpqEvalSingleSource(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  GraphDb db = RandomGraph(nodes, nodes * 3, {"a", "b"}, 11);
  auto q = ParsePathQuery("a (a | b)*", &db.alphabet());
  RQ_CHECK(q.ok());
  Nfa nfa = q->regex
                ->ToNfa(static_cast<uint32_t>(db.alphabet().num_symbols()))
                .WithoutEpsilons();
  for (auto _ : state) {
    auto reached = EvalPathQueryFrom(db, nfa, 0);
    benchmark::DoNotOptimize(reached.size());
  }
}
BENCHMARK(BM_RpqEvalSingleSource)->RangeMultiplier(4)->Range(256, 16384);

}  // namespace
}  // namespace rq


#!/usr/bin/env python3
"""Regression gate over two rq-bench-suite files (bench/run_all.sh output;
schemas rq-bench-suite/1 and /2 are both accepted).

Compares the per-benchmark real times of a baseline suite against a current
suite, matched by (binary, benchmark name). For every binary the geomean of
the current/baseline time ratios is the regression signal: a geomean above
1 + threshold fails the gate.

A binary present in the baseline but absent from the current run also fails
the gate (exit 1): a deleted or silently crashing bench binary must not
read as "no regression". Such binaries are listed under "missing_binaries"
in the comparison JSON. --warn-only downgrades this to a warning like any
other failure.

    bench/compare.py BASELINE.json CURRENT.json
        [--threshold-pct N]   per-binary geomean regression allowance
                              (default 10.0)
        [--warn-only]         report regressions but always exit 0 (used by
                              run_all.sh --smoke self-comparison, where ~1 ms
                              timings are too noisy to gate on)
        [--json-out PATH]     write the comparison (schema
                              "rq-bench-compare/1") to PATH
        [--record-into PATH]  merge the comparison into an existing suite
                              JSON file under the "baseline_comparison" key
                              (run_all.sh records deltas into
                              BENCH_results.json this way)

Exit status: 0 = no regression (or --warn-only), 1 = at least one binary's
geomean regressed beyond the threshold, 2 = usage/schema error.

Benchmarks present on only one side (renamed, added, removed) are listed in
"unmatched" and excluded from the geomean — a rename cannot fake a speedup
or hide a slowdown, but it is surfaced. Error-bearing entries are skipped
the same way.
"""

import argparse
import json
import math
import sys


ACCEPTED_SCHEMAS = ("rq-bench-suite/1", "rq-bench-suite/2")


def load_suite(path):
    with open(path) as f:
        suite = json.load(f)
    if suite.get("schema") not in ACCEPTED_SCHEMAS:
        print(f"{path}: expected schema in {ACCEPTED_SCHEMAS}, "
              f"got {suite.get('schema')!r}", file=sys.stderr)
        sys.exit(2)
    return suite


def benchmark_times(suite):
    """{binary: {benchmark name: real_time_ns}} for error-free entries."""
    times = {}
    for report in suite.get("binaries", []):
        binary = report.get("binary", "?")
        rows = {}
        for bench in report.get("benchmarks", []):
            if "error" in bench or "real_time_ns" not in bench:
                continue
            if bench["real_time_ns"] > 0:
                rows[bench["name"]] = bench["real_time_ns"]
        times[binary] = rows
    return times


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def compare(baseline, current, threshold_pct):
    base_times = benchmark_times(baseline)
    cur_times = benchmark_times(current)
    limit = 1.0 + threshold_pct / 100.0

    binaries = []
    unmatched = []
    # Baseline binaries with no counterpart in the current run: renamed,
    # deleted, or crashed before producing a report. Hard failure — their
    # absence would otherwise shrink the comparison set silently.
    missing_binaries = sorted(set(base_times) - set(cur_times))
    regressed = False
    for binary in sorted(set(base_times) | set(cur_times)):
        base = base_times.get(binary, {})
        cur = cur_times.get(binary, {})
        common = sorted(set(base) & set(cur))
        for name in sorted(set(base) ^ set(cur)):
            unmatched.append(f"{binary}:{name}")
        if not common:
            continue
        ratios = {name: cur[name] / base[name] for name in common}
        binary_geomean = geomean(list(ratios.values()))
        binary_regressed = binary_geomean > limit
        regressed = regressed or binary_regressed
        binaries.append({
            "binary": binary,
            "benchmarks_compared": len(common),
            "geomean_ratio": binary_geomean,
            "regressed": binary_regressed,
            "worst": max(ratios.items(), key=lambda kv: kv[1])[0],
            "worst_ratio": max(ratios.values()),
        })

    overall = (geomean([b["geomean_ratio"] for b in binaries])
               if binaries else None)
    return {
        "schema": "rq-bench-compare/1",
        "threshold_pct": threshold_pct,
        "overall_geomean_ratio": overall,
        "regressed": regressed,
        "binaries": binaries,
        "unmatched": unmatched,
        "missing_binaries": missing_binaries,
    }


def main():
    parser = argparse.ArgumentParser(
        description="Gate on per-binary geomean regressions between two "
                    "rq-bench-suite/1 files.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold-pct", type=float, default=10.0)
    parser.add_argument("--warn-only", action="store_true")
    parser.add_argument("--json-out")
    parser.add_argument("--record-into")
    args = parser.parse_args()

    result = compare(load_suite(args.baseline), load_suite(args.current),
                     args.threshold_pct)

    if not result["binaries"] and not result["missing_binaries"]:
        print("compare.py: no matching benchmarks between the two suites",
              file=sys.stderr)
        return 2

    for entry in result["binaries"]:
        flag = "REGRESSED" if entry["regressed"] else "ok"
        print(f"{entry['binary']}: geomean x{entry['geomean_ratio']:.3f} "
              f"over {entry['benchmarks_compared']} benchmarks "
              f"(worst {entry['worst']} x{entry['worst_ratio']:.3f}) "
              f"[{flag}]")
    if result["unmatched"]:
        print(f"unmatched (excluded): {len(result['unmatched'])} "
              f"benchmark(s), e.g. {result['unmatched'][0]}")
    if result["missing_binaries"]:
        print("MISSING from current run: "
              + ", ".join(result["missing_binaries"]), file=sys.stderr)
    if result["binaries"]:
        print(f"overall geomean x{result['overall_geomean_ratio']:.3f} "
              f"(threshold +{args.threshold_pct:.1f}% per binary)")

    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump(result, f, indent=2)
            f.write("\n")
    if args.record_into:
        with open(args.record_into) as f:
            suite = json.load(f)
        suite["baseline_comparison"] = result
        with open(args.record_into, "w") as f:
            json.dump(suite, f, indent=2)
            f.write("\n")

    if result["missing_binaries"] and not args.warn_only:
        print("FAIL: baseline binaries missing from the current run",
              file=sys.stderr)
        return 1
    if result["regressed"] and not args.warn_only:
        print(f"FAIL: geomean regression beyond +{args.threshold_pct:.1f}% "
              "in at least one binary", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

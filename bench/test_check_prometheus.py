#!/usr/bin/env python3
"""Unit tests for bench/check_prometheus.py on inline fixture files.
Registered with ctest as bench_check_prometheus_unit."""

import os
import subprocess
import sys
import tempfile
import unittest

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
CHECKER = os.path.join(BENCH_DIR, "check_prometheus.py")

VALID = """\
# HELP rq_flight_recorded_total total queries recorded
# TYPE rq_flight_recorded_total counter
rq_flight_recorded_total 3
# HELP rq_query_info query label installed by the CLI
# TYPE rq_query_info gauge
rq_query_info{query="2rpq (a\\\\-)* <= b\\"quoted\\""} 1
# TYPE rq_fold_states counter
rq_fold_states 42
# TYPE rq_fold_peak_states gauge
rq_fold_peak_states 12
# TYPE rq_fold_states_dist histogram
rq_fold_states_dist_bucket{le="15"} 1
rq_fold_states_dist_bucket{le="47"} 3
rq_fold_states_dist_bucket{le="+Inf"} 4
rq_fold_states_dist_sum 120
rq_fold_states_dist_count 4
"""


class CheckPrometheusTest(unittest.TestCase):
    def run_checker(self, text):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "metrics.prom")
            with open(path, "w") as f:
                f.write(text)
            return subprocess.run([sys.executable, CHECKER, path],
                                  capture_output=True, text=True)

    def test_valid_file_passes(self):
        proc = self.run_checker(VALID)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_sample_without_type_fails(self):
        proc = self.run_checker("rq_orphan_total 3\n")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no preceding # TYPE", proc.stderr)

    def test_missing_rq_namespace_fails(self):
        proc = self.run_checker(
            "# TYPE other_total counter\nother_total 1\n")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing rq_ namespace", proc.stderr)

    def test_non_cumulative_histogram_fails(self):
        bad = VALID.replace('rq_fold_states_dist_bucket{le="47"} 3',
                            'rq_fold_states_dist_bucket{le="47"} 0')
        proc = self.run_checker(bad)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("not cumulative", proc.stderr)

    def test_count_bucket_mismatch_fails(self):
        bad = VALID.replace("rq_fold_states_dist_count 4",
                            "rq_fold_states_dist_count 9")
        proc = self.run_checker(bad)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("_count", proc.stderr)

    def test_missing_inf_bucket_fails(self):
        bad = VALID.replace('rq_fold_states_dist_bucket{le="+Inf"} 4\n', "")
        proc = self.run_checker(bad)
        self.assertEqual(proc.returncode, 1)
        self.assertIn('expected le="+Inf"', proc.stderr)

    def test_bare_inf_value_fails(self):
        proc = self.run_checker(
            "# TYPE rq_rate counter\nrq_rate inf\n")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("non-finite", proc.stderr)

    def test_empty_export_fails(self):
        proc = self.run_checker("")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no counter samples", proc.stderr)

    def test_escaped_label_values_pass(self):
        # Backslashes and escaped quotes (regex query text) must parse;
        # commas and braces inside a quoted value are legal too.
        text = VALID + (
            '# TYPE rq_info gauge\n'
            'rq_info{query="a\\\\nb, {c}\\"d\\""} 1\n')
        proc = self.run_checker(text)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_unescaped_quote_in_label_fails(self):
        text = VALID + (
            '# TYPE rq_info gauge\n'
            'rq_info{query="raw"quote"} 1\n')
        proc = self.run_checker(text)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("unparseable", proc.stderr)

    def test_illegal_escape_in_label_fails(self):
        text = VALID + (
            '# TYPE rq_info gauge\n'
            'rq_info{query="bad\\q"} 1\n')
        proc = self.run_checker(text)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("illegal escape", proc.stderr)


if __name__ == "__main__":
    unittest.main()

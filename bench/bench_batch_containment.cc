// Tentpole benchmark for the automata cache (src/cache/) and the parallel
// batch engine (src/containment/batch.h): a repeated-subexpression workload —
// many containment pairs assembled from a small pool of shared regex
// fragments, the shape UC2RPQ/RQ per-disjunct checking produces. The
// cache/jobs grid gives the headline comparison: cached --jobs 4 versus
// uncached serial on identical pairs.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "cache/automata_cache.h"
#include "common/rng.h"
#include "containment/batch.h"
#include "regex/regex.h"

namespace rq {
namespace {

struct Workload {
  Alphabet alphabet;
  std::vector<RegexPtr> owned;
  std::vector<PathContainmentJob> jobs;
};

// 24 pairs built from 6 fragments: every fragment appears in ~8 pairs, so a
// warm cache answers most compilations (and repeated pairs whole verdicts)
// from memory.
const Workload& SharedWorkload() {
  static const Workload* workload = [] {
    auto* w = new Workload();
    const char* fragments[] = {
        "a (b | c)* d",  "(a | b)* (c d)+", "a- b (c | d-)*",
        "((a b) | (c d))*", "a? b+ c* d", "(a | b | c | d)*",
    };
    std::vector<RegexPtr> pool;
    for (const char* text : fragments) {
      pool.push_back(ParseRegex(text, &w->alphabet).value());
    }
    Rng rng(20160626);
    for (int i = 0; i < 24; ++i) {
      const RegexPtr& base = pool[rng.Below(pool.size())];
      const RegexPtr& noise = pool[rng.Below(pool.size())];
      // Half the pairs are containments by construction (q1 ⊑ q1 | noise),
      // half are adversarial (q1 vs an unrelated fragment).
      RegexPtr q1 = base;
      RegexPtr q2 = (i % 2 == 0) ? Regex::Union({base, noise}) : noise;
      w->owned.push_back(q1);
      w->owned.push_back(q2);
      w->jobs.push_back({q1.get(), q2.get()});
    }
    return w;
  }();
  return *workload;
}

// Args: {cache on/off, jobs}. The cached configurations clear the cache once
// before timing, so the first iteration populates it and the steady state
// measures warm-cache throughput — the deployment profile for repeated
// query-workload analysis.
void BM_RepeatedSubexpressionBatch(benchmark::State& state) {
  const bool use_cache = state.range(0) != 0;
  const unsigned jobs = static_cast<unsigned>(state.range(1));
  const Workload& w = SharedWorkload();
  cache::AutomataCache& ac = cache::AutomataCache::Global();
  const bool was_enabled = ac.enabled();
  ac.Clear();
  ac.SetEnabled(use_cache);
  ContainmentBatchOptions options;
  options.jobs = jobs;
  for (auto _ : state) {
    std::vector<PathContainmentResult> results =
        CheckPathContainmentBatch(w.jobs, w.alphabet, options);
    benchmark::DoNotOptimize(results.data());
  }
  state.counters["pairs/iter"] = static_cast<double>(w.jobs.size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.jobs.size()));
  ac.SetEnabled(was_enabled);
}
BENCHMARK(BM_RepeatedSubexpressionBatch)
    ->ArgNames({"cache", "jobs"})
    ->Args({0, 1})   // baseline: uncached, serial
    ->Args({1, 1})   // cache only
    ->Args({0, 4})   // parallelism only
    ->Args({1, 2})
    ->Args({1, 4});  // headline: cached, 4 workers

// NFA-level batch: same pairs pre-compiled, isolating the worker-pool and
// verdict-cache overheads from regex compilation.
void BM_NfaBatchVerdictCache(benchmark::State& state) {
  const bool use_cache = state.range(0) != 0;
  const unsigned jobs = static_cast<unsigned>(state.range(1));
  const Workload& w = SharedWorkload();
  static const std::vector<Nfa>* nfas = [] {
    auto* v = new std::vector<Nfa>();
    const Workload& wl = SharedWorkload();
    uint32_t k = static_cast<uint32_t>(wl.alphabet.num_symbols());
    for (const PathContainmentJob& job : wl.jobs) {
      v->push_back(job.q1->ToNfa(k).WithoutEpsilons());
      v->push_back(job.q2->ToNfa(k).WithoutEpsilons());
    }
    return v;
  }();
  std::vector<NfaContainmentJob> jobs_vec;
  for (size_t i = 0; i < w.jobs.size(); ++i) {
    jobs_vec.push_back({&(*nfas)[2 * i], &(*nfas)[2 * i + 1]});
  }
  cache::AutomataCache& ac = cache::AutomataCache::Global();
  const bool was_enabled = ac.enabled();
  ac.Clear();
  ac.SetEnabled(use_cache);
  ContainmentBatchOptions options;
  options.jobs = jobs;
  for (auto _ : state) {
    std::vector<LanguageContainmentResult> results =
        CheckContainmentBatch(jobs_vec, options);
    benchmark::DoNotOptimize(results.data());
  }
  ac.SetEnabled(was_enabled);
}
BENCHMARK(BM_NfaBatchVerdictCache)
    ->ArgNames({"cache", "jobs"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({1, 4});

}  // namespace
}  // namespace rq

// E10 (§3.4): evaluation of the RQ operator algebra — closure depth,
// operator-tree size, and the paper's triangle-closure example — over
// growing databases.
#include <benchmark/benchmark.h>

#include "graph/generators.h"
#include "rq/eval.h"
#include "rq/parser.h"

namespace rq {
namespace {

RqQuery Parse(const std::string& text) {
  auto q = ParseRq(text);
  RQ_CHECK(q.ok());
  return *q;
}

void BM_RqTransitiveClosureSweep(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  GraphDb graph = RandomGraph(nodes, nodes * 2, {"r"}, 3);
  Database db = GraphToDatabase(graph);
  RqQuery q = Parse("q(x, y) := tc[x,y](r(x, y))");
  for (auto _ : state) {
    Relation out = EvalRqQuery(db, q).value();
    benchmark::DoNotOptimize(out.size());
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_RqTransitiveClosureSweep)->RangeMultiplier(2)->Range(32, 512);

void BM_RqTriangleClosurePaperExample(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  GraphDb graph = RandomGraph(nodes, nodes * 4, {"r"}, 5);
  Database db = GraphToDatabase(graph);
  RqQuery q =
      Parse("q(x, y) := tc[x,y]( exists[z]( r(x,y) & r(y,z) & r(z,x) ) )");
  size_t answers = 0;
  for (auto _ : state) {
    Relation out = EvalRqQuery(db, q).value();
    benchmark::DoNotOptimize(out.size());
    answers = out.size();
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_RqTriangleClosurePaperExample)
    ->RangeMultiplier(2)
    ->Range(16, 128);

void BM_RqNestedClosures(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  GraphDb graph = RandomGraph(nodes, nodes * 2, {"r", "s"}, 9);
  Database db = GraphToDatabase(graph);
  // Closure of a composition of a closure: tc( r+ ∘ s ).
  RqQuery q = Parse(
      "q(x, y) := tc[x,y]( exists[m]( tc[x,m](r(x, m)) & s(m, y) ) )");
  for (auto _ : state) {
    Relation out = EvalRqQuery(db, q).value();
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_RqNestedClosures)->RangeMultiplier(2)->Range(16, 256);

void BM_RqOperatorTreeBreadth(benchmark::State& state) {
  const size_t branches = static_cast<size_t>(state.range(0));
  GraphDb graph = RandomGraph(100, 300, {"r", "s"}, 13);
  Database db = GraphToDatabase(graph);
  // Union of `branches` 2-step compositions.
  std::string text = "q(x, y) := ";
  for (size_t i = 0; i < branches; ++i) {
    if (i > 0) text += " | ";
    text += (i % 2 == 0) ? "exists[m](r(x, m) & s(m, y))"
                         : "exists[m](s(x, m) & r(m, y))";
  }
  RqQuery q = Parse(text);
  for (auto _ : state) {
    Relation out = EvalRqQuery(db, q).value();
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_RqOperatorTreeBreadth)->DenseRange(1, 8);

void BM_BinaryTransitiveClosureKernel(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  GraphDb graph = PathGraph(nodes, "e");
  Database db = GraphToDatabase(graph);
  const Relation* base = db.Find("e");
  for (auto _ : state) {
    Relation closed = BinaryTransitiveClosure(*base);
    benchmark::DoNotOptimize(closed.size());
  }
  // Quadratic output on a path: n(n-1)/2 tuples.
  state.counters["output_tuples"] =
      static_cast<double>(nodes * (nodes - 1) / 2);
}
BENCHMARK(BM_BinaryTransitiveClosureKernel)
    ->RangeMultiplier(2)
    ->Range(32, 512);

}  // namespace
}  // namespace rq


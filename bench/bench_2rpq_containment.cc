// E2 + E5 (§3.2, Lemma 2 / Theorem 5): the full 2RPQ containment pipeline —
// NFA → fold-2NFA (Lemma 3) → lazily determinized complement → on-the-fly
// product emptiness. Sweeps query size and measures explored product
// states; also times the paper's worked example p ⊑ p p⁻ p.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "pathquery/containment.h"
#include "regex/regex.h"

namespace rq {
namespace {

Alphabet MakeAlphabet(size_t labels) {
  Alphabet alphabet;
  for (size_t i = 0; i < labels; ++i) {
    alphabet.InternLabel("l" + std::to_string(i));
  }
  return alphabet;
}

void BM_PaperExamplePContainedInPPInvP(benchmark::State& state) {
  Alphabet alphabet;
  alphabet.InternLabel("p");
  RegexPtr q1 = ParseRegex("p", &alphabet).value();
  RegexPtr q2 = ParseRegex("p p- p", &alphabet).value();
  for (auto _ : state) {
    PathContainmentResult result =
        CheckPathQueryContainment(*q1, *q2, alphabet);
    benchmark::DoNotOptimize(result.contained);
  }
}
BENCHMARK(BM_PaperExamplePContainedInPPInvP);

void BM_TwoRpqContainmentSizeSweep(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Alphabet alphabet = MakeAlphabet(2);
  Rng rng(20160626);
  uint64_t explored = 0;
  uint64_t checks = 0;
  uint64_t contained = 0;
  for (auto _ : state) {
    RegexPtr r1 = RandomRegex(alphabet, depth, /*allow_inverse=*/true, rng);
    RegexPtr noise = RandomRegex(alphabet, depth, /*allow_inverse=*/true,
                                 rng);
    RegexPtr r2 = rng.Chance(0.5) ? Regex::Union({r1, noise}) : noise;
    PathContainmentResult result =
        CheckPathQueryContainment(*r1, *r2, alphabet);
    benchmark::DoNotOptimize(result.contained);
    explored += result.explored_states;
    contained += result.contained ? 1 : 0;
    ++checks;
  }
  state.counters["explored/check"] =
      static_cast<double>(explored) / static_cast<double>(checks);
  state.counters["contained%"] =
      100.0 * static_cast<double>(contained) / static_cast<double>(checks);
}
BENCHMARK(BM_TwoRpqContainmentSizeSweep)->DenseRange(1, 4);

// The cost of two-wayness: the same one-way query pair decided by Lemma 1
// versus pushed through the fold pipeline.
void BM_OneWayViaLemma1(benchmark::State& state) {
  Alphabet alphabet = MakeAlphabet(2);
  Rng rng(5);
  for (auto _ : state) {
    RegexPtr r1 = RandomRegex(alphabet, 3, /*allow_inverse=*/false, rng);
    RegexPtr r2 = RandomRegex(alphabet, 3, /*allow_inverse=*/false, rng);
    PathContainmentResult result =
        CheckPathQueryContainment(*r1, *r2, alphabet);
    benchmark::DoNotOptimize(result.contained);
  }
}
BENCHMARK(BM_OneWayViaLemma1);

void BM_OneWayViaFoldPipeline(benchmark::State& state) {
  Alphabet alphabet = MakeAlphabet(2);
  Rng rng(5);
  for (auto _ : state) {
    RegexPtr r1 = RandomRegex(alphabet, 3, /*allow_inverse=*/false, rng);
    RegexPtr r2 = RandomRegex(alphabet, 3, /*allow_inverse=*/false, rng);
    PathContainmentResult result =
        CheckTwoWayContainment(*r1, *r2, alphabet);
    benchmark::DoNotOptimize(result.contained);
  }
}
BENCHMARK(BM_OneWayViaFoldPipeline);

}  // namespace
}  // namespace rq


// Ablations of the design choices DESIGN.md calls out:
//   * antichain subsumption pruning in the on-the-fly containment search
//     (vs the plain memoized search),
//   * the greedy most-constrained-first join order in the conjunction
//     matcher (vs left-to-right order).
#include <benchmark/benchmark.h>

#include "automata/containment.h"
#include "common/rng.h"
#include "regex/regex.h"
#include "relational/cq.h"

namespace rq {
namespace {

Alphabet MakeAlphabet(size_t labels) {
  Alphabet alphabet;
  for (size_t i = 0; i < labels; ++i) {
    alphabet.InternLabel("l" + std::to_string(i));
  }
  return alphabet;
}

void RunContainment(benchmark::State& state, bool antichain) {
  const int depth = static_cast<int>(state.range(0));
  Alphabet alphabet = MakeAlphabet(3);
  Rng rng(1234);
  uint64_t explored = 0;
  uint64_t checks = 0;
  for (auto _ : state) {
    RegexPtr r1 = RandomRegex(alphabet, depth, false, rng);
    RegexPtr noise = RandomRegex(alphabet, depth, false, rng);
    RegexPtr r2 = rng.Chance(0.5) ? Regex::Union({r1, noise}) : noise;
    Nfa n1 = r1->ToNfa(6);
    Nfa n2 = r2->ToNfa(6);
    LanguageContainmentResult result =
        antichain ? CheckLanguageContainmentAntichain(n1, n2)
                  : CheckLanguageContainment(n1, n2);
    benchmark::DoNotOptimize(result.contained);
    explored += result.explored_states;
    ++checks;
  }
  state.counters["explored/check"] =
      static_cast<double>(explored) / static_cast<double>(checks);
}

void BM_ContainmentPlainSearch(benchmark::State& state) {
  RunContainment(state, /*antichain=*/false);
}
BENCHMARK(BM_ContainmentPlainSearch)->DenseRange(3, 6);

void BM_ContainmentAntichainSearch(benchmark::State& state) {
  RunContainment(state, /*antichain=*/true);
}
BENCHMARK(BM_ContainmentAntichainSearch)->DenseRange(3, 6);

void RunMatcher(benchmark::State& state, bool greedy) {
  const size_t atoms = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Database db;
  // Skewed relation sizes: a big relation first penalizes naive order.
  Relation* big = db.GetOrCreate("p0", 2).value();
  Relation* small = db.GetOrCreate("p1", 2).value();
  for (int i = 0; i < 2000; ++i) {
    big->Insert({rng.Below(200), rng.Below(200)});
  }
  for (int i = 0; i < 40; ++i) {
    small->Insert({rng.Below(200), rng.Below(200)});
  }
  // Chain: p0(x0,x1), p1(x1,x2), p0(x2,x3), p1(x3,x4), ...
  std::vector<MatchAtom> chain;
  for (size_t i = 0; i < atoms; ++i) {
    chain.push_back({i % 2 == 0 ? big : small,
                     {static_cast<VarId>(i), static_cast<VarId>(i + 1)}});
  }
  uint64_t matches = 0;
  for (auto _ : state) {
    size_t n =
        greedy
            ? MatchConjunction(chain, static_cast<uint32_t>(atoms + 1),
                               [](const std::vector<Value>&) { return true; })
            : MatchConjunctionInOrder(
                  chain, static_cast<uint32_t>(atoms + 1),
                  [](const std::vector<Value>&) { return true; });
    benchmark::DoNotOptimize(n);
    matches = n;
  }
  state.counters["matches"] = static_cast<double>(matches);
}

void BM_MatcherGreedyOrder(benchmark::State& state) {
  RunMatcher(state, /*greedy=*/true);
}
BENCHMARK(BM_MatcherGreedyOrder)->DenseRange(2, 5);

void BM_MatcherLeftToRightOrder(benchmark::State& state) {
  RunMatcher(state, /*greedy=*/false);
}
BENCHMARK(BM_MatcherLeftToRightOrder)->DenseRange(2, 5);

}  // namespace
}  // namespace rq


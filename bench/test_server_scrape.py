#!/usr/bin/env python3
"""Live-server Prometheus scrape check (the ISSUE-9 acceptance run).

    bench/test_server_scrape.py <rqserved-binary>

Launches the real rqserved daemon on an ephemeral port, drives a few
framed requests through it so the server.* families are non-zero, scrapes
GET /metrics over HTTP, validates the scraped exposition with
bench/check_prometheus.py, then SIGTERMs the daemon and requires a clean
drain (exit 0). Exit status: 0 = pass, 1 = any failure.
"""

import json
import os
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import time
import urllib.request

import check_prometheus


def call(sock, request):
    """One framed JSON request/response exchange."""
    payload = json.dumps(request).encode()
    sock.sendall(struct.pack(">I", len(payload)) + payload)
    header = sock.recv(4, socket.MSG_WAITALL)
    assert len(header) == 4, "short frame header"
    (length,) = struct.unpack(">I", header)
    body = sock.recv(length, socket.MSG_WAITALL)
    assert len(body) == length, "short frame body"
    return json.loads(body)


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    rqserved = argv[1]
    if not os.access(rqserved, os.X_OK):
        print(f"not executable: {rqserved}", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory() as tmp:
        port_file = os.path.join(tmp, "port")
        server = subprocess.Popen(
            [rqserved, "--port", "0", "--port-file", port_file,
             "--workers", "2"])
        try:
            for _ in range(200):
                if os.path.exists(port_file):
                    break
                if server.poll() is not None:
                    print("rqserved exited during startup", file=sys.stderr)
                    return 1
                time.sleep(0.05)
            else:
                print("rqserved never wrote its port file", file=sys.stderr)
                return 1
            with open(port_file) as f:
                port = int(f.read().strip())

            # Non-trivial traffic so the scrape carries live counters.
            with socket.create_connection(("127.0.0.1", port), 5) as sock:
                for i in range(3):
                    response = call(sock, {
                        "type": "containment", "id": i, "class": "rpq",
                        "q1": "a a* b", "q2": "a* b"})
                    assert response["ok"], response
                health = call(sock, {"type": "health", "id": 99})
                assert health["state"] == "serving", health

            body = urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=5).read()
            scrape_path = os.path.join(tmp, "scrape.prom")
            with open(scrape_path, "wb") as f:
                f.write(body)
            errors = check_prometheus.check_file(scrape_path)
            text = body.decode()
            for family in ("rq_server_requests", "rq_server_connections",
                           "rq_server_request_latency_ns_dist_bucket"):
                if family not in text:
                    errors.append(f"scrape missing {family}")
            if errors:
                for e in errors:
                    print(e, file=sys.stderr)
                return 1

            server.send_signal(signal.SIGTERM)
            rc = server.wait(timeout=30)
            if rc != 0:
                print(f"rqserved drain exited {rc}", file=sys.stderr)
                return 1
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()

    print("test_server_scrape: live /metrics scrape OK, clean drain")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// E6 (§2.3, Chandra-Merlin [18]): CQ containment is an NP homomorphism
// search. Sweeps the number of body atoms and variables of random binary
// CQs and reports the containment rate, exercising both quick refutations
// and full backtracking.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "relational/cq.h"

namespace rq {
namespace {

void BM_CqContainmentAtomSweep(benchmark::State& state) {
  const size_t atoms = static_cast<size_t>(state.range(0));
  Rng rng(atoms * 7919 + 1);
  uint64_t checks = 0;
  uint64_t contained = 0;
  for (auto _ : state) {
    ConjunctiveQuery q1 = RandomBinaryCq(atoms, atoms + 1, 2, rng);
    ConjunctiveQuery q2 = RandomBinaryCq(atoms, atoms + 1, 2, rng);
    auto result = CqContained(q1, q2);
    benchmark::DoNotOptimize(result.ok());
    if (result.ok() && *result) ++contained;
    ++checks;
  }
  state.counters["contained%"] =
      100.0 * static_cast<double>(contained) / static_cast<double>(checks);
}
BENCHMARK(BM_CqContainmentAtomSweep)->DenseRange(2, 10)->Arg(14)->Arg(18);

// Positive instances: q1 = q2 plus extra atoms (always contained), which
// forces the homomorphism to be found rather than refuted early.
void BM_CqContainmentPositiveInstances(benchmark::State& state) {
  const size_t atoms = static_cast<size_t>(state.range(0));
  Rng rng(atoms * 104729 + 5);
  for (auto _ : state) {
    ConjunctiveQuery q2 = RandomBinaryCq(atoms, atoms + 1, 2, rng);
    ConjunctiveQuery q1 = q2;
    // Strengthen q1 with extra atoms over existing variables.
    ConjunctiveQuery extra = RandomBinaryCq(atoms / 2 + 1, atoms + 1, 2, rng);
    for (const CqAtom& atom : extra.atoms) q1.atoms.push_back(atom);
    auto result = CqContained(q1, q2);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_CqContainmentPositiveInstances)->DenseRange(2, 10);

// Evaluation over a fixed database (the same machinery, different use).
void BM_CqEvaluation(benchmark::State& state) {
  const size_t atoms = static_cast<size_t>(state.range(0));
  Rng rng(99);
  Database db;
  Relation* p0 = db.GetOrCreate("p0", 2).value();
  Relation* p1 = db.GetOrCreate("p1", 2).value();
  for (int i = 0; i < 300; ++i) {
    p0->Insert({rng.Below(40), rng.Below(40)});
    p1->Insert({rng.Below(40), rng.Below(40)});
  }
  ConjunctiveQuery query = RandomBinaryCq(atoms, atoms + 1, 2, rng);
  for (auto _ : state) {
    auto result = EvalCq(db, query);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_CqEvaluation)->DenseRange(2, 6);

}  // namespace
}  // namespace rq


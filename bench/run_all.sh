#!/usr/bin/env bash
# Runs every bench_* binary through the shared harness and aggregates the
# per-binary "rq-bench/1" reports into one BENCH_results.json
# (schema "rq-bench-suite/1").
#
# Usage: bench/run_all.sh [--smoke] [--trace] [--build-dir DIR] [--out FILE]
#   --smoke       abbreviated pass (~1 ms per benchmark) — CI smoke target
#   --trace       enable aggregate span tracing in each binary
#   --build-dir   directory holding the bench binaries
#                 (default: <repo>/build/bench)
#   --out         aggregated output path (default: <repo>/BENCH_results.json)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build/bench"
out="${repo_root}/BENCH_results.json"
extra_flags=()
smoke=false

while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=true; extra_flags+=(--smoke); shift ;;
    --trace) extra_flags+=(--trace); shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --out) out="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

binaries=("${build_dir}"/bench_*)
found=()
for b in "${binaries[@]}"; do
  [[ -x "$b" && ! "$b" == *.json ]] && found+=("$b")
done
if [[ ${#found[@]} -eq 0 ]]; then
  echo "no bench_* binaries in ${build_dir} — build the project first" >&2
  exit 1
fi

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

reports=()
failed=0
for bin in "${found[@]}"; do
  name="$(basename "$bin")"
  report="${tmp_dir}/${name}.json"
  echo "== ${name}" >&2
  if "$bin" "${extra_flags[@]}" --json "$report" >&2; then
    reports+=("$report")
  else
    echo "FAILED: ${name}" >&2
    failed=1
  fi
done

python3 - "$out" "$smoke" "${reports[@]}" <<'PY'
import json, sys

out_path, smoke = sys.argv[1], sys.argv[2] == "true"
suite = {"schema": "rq-bench-suite/1", "smoke": smoke, "binaries": []}
for path in sys.argv[3:]:
    with open(path) as f:
        report = json.load(f)
    assert report.get("schema") == "rq-bench/1", path
    suite["binaries"].append(report)

# Sanity: the suite must exercise the core subsystems' counters.
names = set()
for report in suite["binaries"]:
    for c in report.get("obs", {}).get("counters", []):
        if c["value"] > 0:
            names.add(c["name"])
subsystems = {n.split(".")[0] for n in names}
required = {"containment", "fold", "complement", "datalog"}
missing = required - subsystems
if missing:
    sys.exit(f"suite missing counters from subsystems: {sorted(missing)}")

with open(out_path, "w") as f:
    json.dump(suite, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}: {len(suite['binaries'])} binaries, "
      f"{len(names)} active counters, subsystems={sorted(subsystems)}")
PY

exit "$failed"

#!/usr/bin/env bash
# Runs every bench_* binary through the shared harness and aggregates the
# per-binary "rq-bench/1" reports into one BENCH_results.json
# (schema "rq-bench-suite/2": adds run wall-clock start/finish and host
# provenance — nproc, kernel, compiler — to the /1 layout; compare.py
# accepts both). Each binary entry gains a "peak_bytes" summary
# ({tracked, rss}: the memory accountant's high-water mark and the OS
# ru_maxrss view — docs/OBSERVABILITY.md "Memory accounting").
#
# Usage: bench/run_all.sh [--smoke] [--trace] [--cache] [--jobs N]
#                         [--timeout SECS] [--baseline FILE]
#                         [--build-dir DIR] [--out FILE]
#   --smoke       abbreviated pass (~1 ms per benchmark) — CI smoke target.
#                 Each binary additionally writes its registry in
#                 Prometheus text format; every file is validated by
#                 bench/check_prometheus.py and the last one is kept next
#                 to --out as <out-stem>.prom.
#                 Without an explicit --baseline, the first smoke run saves
#                 its suite as <build-dir>/BENCH_baseline.json and later
#                 runs self-compare against it (warn-only: smoke timings
#                 are too noisy to gate on).
#   --trace       enable aggregate span tracing in each binary
#   --cache       enable the automata cache in every binary; the suite
#                 report then records the aggregate cache hit rate, and the
#                 run fails if the cache saw no traffic at all
#   --jobs N      process-default worker count for batched containment
#   --timeout S   hard per-binary wall-clock cap: a binary still running
#                 after S seconds is killed (SIGTERM, then SIGKILL after
#                 10 s) and the run fails with "TIMEOUT: <name>". Guards
#                 the suite against a hung benchmark; complements the
#                 harness's cooperative --timeout-ms flag
#   --baseline F  compare this run against a prior suite file F via
#                 bench/compare.py: the deltas are recorded under
#                 "baseline_comparison" in the output, and a >10% geomean
#                 regression in any binary fails the run
#   --build-dir   directory holding the bench binaries
#                 (default: <repo>/build/bench)
#   --out         aggregated output path (default: <repo>/BENCH_results.json)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build/bench"
out="${repo_root}/BENCH_results.json"
extra_flags=()
smoke=false
cache=false
baseline=""
timeout_s=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=true; extra_flags+=(--smoke); shift ;;
    --trace) extra_flags+=(--trace); shift ;;
    --cache) cache=true; extra_flags+=(--cache); shift ;;
    --jobs) extra_flags+=(--jobs "$2"); shift 2 ;;
    --timeout) timeout_s="$2"; shift 2 ;;
    --baseline) baseline="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --out) out="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

binaries=("${build_dir}"/bench_*)
found=()
for b in "${binaries[@]}"; do
  [[ -x "$b" && ! "$b" == *.json ]] && found+=("$b")
done
if [[ ${#found[@]} -eq 0 ]]; then
  echo "no bench_* binaries in ${build_dir} — build the project first" >&2
  exit 1
fi

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

# Run provenance for the suite report: wall-clock window and host identity,
# so a results file is interpretable long after the run (and across hosts).
started_iso="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
started_epoch="$(date +%s)"
host_nproc="$(nproc 2>/dev/null || echo 1)"
host_uname="$(uname -srm 2>/dev/null || echo unknown)"
host_compiler="$("${CXX:-c++}" --version 2>/dev/null | head -1 || true)"

reports=()
proms=()
failed=0
for bin in "${found[@]}"; do
  name="$(basename "$bin")"
  report="${tmp_dir}/${name}.json"
  per_bin_flags=()
  if [[ "$smoke" == true ]]; then
    per_bin_flags+=(--prometheus "${tmp_dir}/${name}.prom")
  fi
  runner=()
  if [[ -n "$timeout_s" ]]; then
    runner=(timeout --foreground --kill-after=10 "$timeout_s")
  fi
  echo "== ${name}" >&2
  if "${runner[@]}" "$bin" "${extra_flags[@]}" "${per_bin_flags[@]}" \
       --json "$report" >&2
  then
    reports+=("$report")
    [[ "$smoke" == true ]] && proms+=("${tmp_dir}/${name}.prom")
  else
    rc=$?
    if [[ -n "$timeout_s" && ( $rc -eq 124 || $rc -eq 137 ) ]]; then
      echo "TIMEOUT: ${name} (exceeded ${timeout_s}s)" >&2
    else
      echo "FAILED: ${name}" >&2
    fi
    failed=1
  fi
done

# Every smoke run's Prometheus exposition must parse; the last binary's
# file is kept as the suite artifact.
if [[ ${#proms[@]} -gt 0 ]]; then
  if ! python3 "${repo_root}/bench/check_prometheus.py" "${proms[@]}" >&2
  then
    echo "FAILED: Prometheus exposition validation" >&2
    failed=1
  fi
  cp "${proms[-1]}" "${out%.json}.prom"
  echo "wrote ${out%.json}.prom" >&2
fi

finished_iso="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
finished_epoch="$(date +%s)"

RQ_BENCH_STARTED="$started_iso" RQ_BENCH_FINISHED="$finished_iso" \
RQ_BENCH_DURATION_S="$((finished_epoch - started_epoch))" \
RQ_BENCH_NPROC="$host_nproc" RQ_BENCH_UNAME="$host_uname" \
RQ_BENCH_COMPILER="$host_compiler" \
python3 - "$out" "$smoke" "$cache" "${reports[@]}" <<'PY'
import json, os, sys

out_path, smoke, cache = sys.argv[1], sys.argv[2] == "true", sys.argv[3] == "true"
suite = {"schema": "rq-bench-suite/2", "smoke": smoke, "cache": cache,
         "run": {
             "started": os.environ.get("RQ_BENCH_STARTED", ""),
             "finished": os.environ.get("RQ_BENCH_FINISHED", ""),
             "duration_s": int(os.environ.get("RQ_BENCH_DURATION_S", "0")),
         },
         "host": {
             "nproc": int(os.environ.get("RQ_BENCH_NPROC", "0")),
             "uname": os.environ.get("RQ_BENCH_UNAME", ""),
             "compiler": os.environ.get("RQ_BENCH_COMPILER", ""),
         },
         "binaries": []}
for path in sys.argv[4:]:
    with open(path) as f:
        report = json.load(f)
    assert report.get("schema") == "rq-bench/1", path
    # Per-binary memory summary (docs/OBSERVABILITY.md "Memory
    # accounting"): the accountant's high-water mark across the whole run
    # plus the OS view sampled at export time, lifted out of the gauge
    # array so results are greppable without walking the obs snapshot.
    gauges = {g["name"]: g
              for g in report.get("obs", {}).get("gauges", [])}
    tracked = gauges.get("mem.tracked_bytes", {})
    rss = gauges.get("mem.peak_rss_bytes", {})
    report["peak_bytes"] = {
        "tracked": tracked.get("peak", 0),
        "rss": rss.get("value", 0),
    }
    suite["binaries"].append(report)

# Sanity: the suite must exercise the core subsystems' counters.
names = set()
totals = {}
for report in suite["binaries"]:
    for c in report.get("obs", {}).get("counters", []):
        if c["value"] > 0:
            names.add(c["name"])
        totals[c["name"]] = totals.get(c["name"], 0) + c["value"]
subsystems = {n.split(".")[0] for n in names}
required = {"containment", "fold", "complement", "datalog"}
missing = required - subsystems
if missing:
    sys.exit(f"suite missing counters from subsystems: {sorted(missing)}")

# Aggregate cache traffic across the suite. With --cache the cache must have
# seen traffic — a silent zero means the flag never reached the checkers.
hits = totals.get("cache.hits", 0)
misses = totals.get("cache.misses", 0)
lookups = hits + misses
suite["cache_stats"] = {
    "hits": hits,
    "misses": misses,
    "evictions": totals.get("cache.evictions", 0),
    "hit_rate": hits / lookups if lookups else None,
}
if cache and lookups == 0:
    sys.exit("--cache was on but cache.hits + cache.misses == 0: "
             "the cache never saw a lookup")

# Headline metric: geomean speedup of cached --jobs 4 over uncached serial
# across the bench_batch_containment workloads (cache:C/jobs:J arg names).
base_times, fast_times = {}, {}
for report in suite["binaries"]:
    if report.get("binary") != "bench_batch_containment":
        continue
    for b in report.get("benchmarks", []):
        name = b.get("name", "")
        if "error" in b:
            continue
        workload = name.split("/")[0]
        if "cache:0/jobs:1" in name:
            base_times[workload] = b["real_time_ns"]
        elif "cache:1/jobs:4" in name:
            fast_times[workload] = b["real_time_ns"]
common = sorted(set(base_times) & set(fast_times))
if common:
    import math
    ratios = [base_times[w] / fast_times[w] for w in common]
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    suite["batch_cache_speedup"] = {
        "workloads": {w: base_times[w] / fast_times[w] for w in common},
        "geomean": geomean,
        "comparison": "uncached jobs=1 vs cached jobs=4 (real time)",
    }

# Second headline: geomean speedup of multi-source graph evaluation at
# jobs=8 over jobs=1 across the bench_graph_eval jobs-sweep workloads
# (benchmark names embed .../jobs:N). Tracks available cores: ~1.0 on a
# single-core host, rising with real parallel hardware.
eval_base, eval_fast = {}, {}
for report in suite["binaries"]:
    if report.get("binary") != "bench_graph_eval":
        continue
    for b in report.get("benchmarks", []):
        name = b.get("name", "")
        if "error" in b or "/jobs:" not in name:
            continue
        workload, _, jobs = name.rpartition("/jobs:")
        if jobs == "1":
            eval_base[workload] = b["real_time_ns"]
        elif jobs == "8":
            eval_fast[workload] = b["real_time_ns"]
common = sorted(set(eval_base) & set(eval_fast))
if common:
    import math
    ratios = [eval_base[w] / eval_fast[w] for w in common]
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    suite["graph_eval_speedup"] = {
        "workloads": {w: eval_base[w] / eval_fast[w] for w in common},
        "geomean": geomean,
        "comparison": "multi-source eval jobs=1 vs jobs=8 (real time)",
    }

# Third headline: query-service throughput/latency/shed-rate from
# bench_server_throughput's closed-loop configs (docs/SERVING.md). Keyed
# by benchmark name so both the client sweep and the saturated shedding
# config land in the suite summary.
server_configs = {}
for report in suite["binaries"]:
    if report.get("binary") != "bench_server_throughput":
        continue
    for b in report.get("benchmarks", []):
        counters = b.get("counters", {})
        if "error" in b or "requests_per_s" not in counters:
            continue
        server_configs[b["name"]] = {
            "requests_per_s": counters["requests_per_s"],
            "p50_us": counters.get("p50_us"),
            "p99_us": counters.get("p99_us"),
            "shed_rate": counters.get("shed_rate"),
        }
if server_configs:
    suite["server_throughput"] = {
        "configs": server_configs,
        "comparison": "closed-loop rqserved clients sweep + saturated "
                      "shedding config (docs/SERVING.md)",
    }

# Fourth headline: live-mutation throughput from bench_graph_mutation's
# mixed read/write closed-loop configs (docs/SERVING.md "Updates"). Keyed
# by benchmark name so the writer sweep and the budget-capped fallback
# config both land in the suite summary.
mutation_configs = {}
for report in suite["binaries"]:
    if report.get("binary") != "bench_graph_mutation":
        continue
    for b in report.get("benchmarks", []):
        counters = b.get("counters", {})
        if "error" in b or "mutations_per_s" not in counters:
            continue
        mutation_configs[b["name"]] = {
            "mutations_per_s": counters["mutations_per_s"],
            "edges_per_s": counters.get("edges_per_s"),
            "reads_per_s": counters.get("reads_per_s"),
            "write_p99_us": counters.get("write_p99_us"),
        }
if mutation_configs:
    suite["mutation_throughput"] = {
        "configs": mutation_configs,
        "comparison": "closed-loop mixed update/eval writer sweep + "
                      "budget-capped fallback config (docs/SERVING.md "
                      "\"Updates\")",
    }

with open(out_path, "w") as f:
    json.dump(suite, f, indent=2)
    f.write("\n")
hit_rate = suite["cache_stats"]["hit_rate"]
print(f"wrote {out_path}: {len(suite['binaries'])} binaries, "
      f"{len(names)} active counters, subsystems={sorted(subsystems)}, "
      f"cache hit rate="
      f"{'n/a' if hit_rate is None else f'{hit_rate:.1%}'}")
PY

# Regression gating (bench/compare.py). An explicit --baseline gates the
# run; --smoke without one bootstraps a per-build-dir baseline and then
# self-compares warn-only on later runs.
compare_py="${repo_root}/bench/compare.py"
if [[ -n "$baseline" ]]; then
  if [[ ! -f "$baseline" ]]; then
    echo "baseline file not found: ${baseline}" >&2
    exit 2
  fi
  echo "== comparing against baseline ${baseline}" >&2
  python3 "$compare_py" "$baseline" "$out" --record-into "$out" >&2 \
    || failed=1
elif [[ "$smoke" == true ]]; then
  smoke_baseline="${build_dir}/BENCH_baseline.json"
  if [[ -f "$smoke_baseline" ]]; then
    echo "== smoke self-comparison against ${smoke_baseline} (warn-only)" >&2
    python3 "$compare_py" "$smoke_baseline" "$out" \
      --warn-only --record-into "$out" >&2 || true
  else
    cp "$out" "$smoke_baseline"
    echo "saved smoke baseline to ${smoke_baseline}" >&2
  fi
fi

exit "$failed"

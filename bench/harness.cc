// Shared main() for every bench_* binary: Google Benchmark plus the librq
// observability layer (docs/OBSERVABILITY.md).
//
// Extra flags, handled before Google Benchmark sees the command line:
//   --json <path>   write a machine-readable report (schema "rq-bench/1"):
//                   per-benchmark wall/cpu time and user counters, plus the
//                   full obs snapshot (subsystem counters, span stats)
//                   accumulated across the run.
//   --smoke         run each benchmark for ~1 ms instead of the default
//                   budget — a correctness/telemetry smoke pass, not a
//                   measurement. Recorded in the report as "smoke": true.
//   --trace         enable aggregate span tracing during the run (per-name
//                   count/total time/p50/p99; bounded memory even across
//                   millions of benchmark iterations).
//   --chrome-trace <path>
//                   enable FULL span tracing and write the spans as Chrome
//                   trace-event JSON (Perfetto / chrome://tracing) on exit.
//                   Records at most kMaxRecordedSpans rows (the overflow
//                   still aggregates; see obs.dropped_spans) — pair with
//                   --smoke to keep traces small.
//   --cache         enable the content-addressed automata cache
//                   (docs/CACHING.md) for the whole run. Recorded in the
//                   report as "cache": true; cache.* counters land in the
//                   obs snapshot. Benchmarks that manage the cache flag
//                   themselves (bench_batch_containment) override it.
//   --jobs N        set the process-default worker count
//                   (common/parallel.h): batched containment checks and
//                   multi-source graph evaluation both read it.
//   --timeout-ms N  install an execution deadline (common/deadline.h) over
//                   the whole benchmark run; library loops bail out with
//                   DeadlineExceeded instead of hanging the harness. The
//                   exit code stays 0 — pair with run_all.sh --timeout for
//                   a hard process kill.
//   --memory-budget-mb N
//                   install a byte budget (common/mem.h) over the whole
//                   run; library loops bail out with ResourceExhausted
//                   through the same polling sites as --timeout-ms, and
//                   mem.budget_exceeded lands in the obs snapshot. The
//                   run always executes under a MemContext, so the mem.*
//                   gauges in the report carry per-subsystem peaks.
//   --prometheus <path>
//                   write the end-of-run registry state (every counter,
//                   gauge, and histogram) in Prometheus text exposition
//                   format to <path> (obs/prometheus.h).
//
// bench/run_all.sh drives every binary through this interface and merges
// the per-binary reports into BENCH_results.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cache/automata_cache.h"
#include "common/deadline.h"
#include "common/mem.h"
#include "common/parallel.h"
#include "obs/chrome_trace.h"
#include "obs/counters.h"
#include "obs/export.h"
#include "obs/gauge.h"
#include "obs/histogram.h"
#include "obs/prometheus.h"
#include "obs/trace.h"

namespace {

// Console output stays the default human-readable report; this shim also
// captures every finished run for the JSON report.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) captured_.push_back(run);
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Run>& captured() const { return captured_; }

 private:
  std::vector<Run> captured_;
};

std::string Basename(const char* path) {
  std::string s(path);
  size_t slash = s.find_last_of('/');
  return slash == std::string::npos ? s : s.substr(slash + 1);
}

rq::obs::JsonValue ReportJson(const std::string& binary, bool smoke,
                              bool cache,
                              const std::vector<CaptureReporter::Run>& runs) {
  using rq::obs::JsonValue;
  JsonValue root = JsonValue::Object();
  root.Set("schema", JsonValue::String("rq-bench/1"));
  root.Set("binary", JsonValue::String(binary));
  root.Set("smoke", JsonValue::Bool(smoke));
  root.Set("cache", JsonValue::Bool(cache));

  JsonValue benchmarks = JsonValue::Array();
  for (const auto& run : runs) {
    if (run.run_type != CaptureReporter::Run::RT_Iteration) continue;
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(run.benchmark_name()));
    if (run.error_occurred) {
      entry.Set("error", JsonValue::String(run.error_message));
      benchmarks.Append(std::move(entry));
      continue;
    }
    entry.Set("iterations",
              JsonValue::Number(static_cast<uint64_t>(run.iterations)));
    double iters = run.iterations > 0
                       ? static_cast<double>(run.iterations)
                       : 1.0;
    entry.Set("real_time_ns",
              JsonValue::Number(run.real_accumulated_time / iters * 1e9));
    entry.Set("cpu_time_ns",
              JsonValue::Number(run.cpu_accumulated_time / iters * 1e9));
    JsonValue counters = JsonValue::Object();
    for (const auto& [name, counter] : run.counters) {
      counters.Set(name, JsonValue::Number(static_cast<double>(counter)));
    }
    entry.Set("counters", std::move(counters));
    benchmarks.Append(std::move(entry));
  }
  root.Set("benchmarks", std::move(benchmarks));
  root.Set("obs", rq::obs::SnapshotJson());
  return root;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string chrome_trace_path;
  std::string prometheus_path;
  bool smoke = false;
  bool trace = false;
  bool cache = false;
  int64_t timeout_ms = 0;
  int64_t memory_budget_mb = 0;

  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  static std::string min_time_flag = "--benchmark_min_time=0.001";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      chrome_trace_path = argv[++i];
    } else if (std::strncmp(argv[i], "--chrome-trace=", 15) == 0) {
      chrome_trace_path = argv[i] + 15;
    } else if (std::strcmp(argv[i], "--prometheus") == 0 && i + 1 < argc) {
      prometheus_path = argv[++i];
    } else if (std::strncmp(argv[i], "--prometheus=", 13) == 0) {
      prometheus_path = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      cache = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      rq::SetDefaultParallelJobs(
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10)));
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      rq::SetDefaultParallelJobs(
          static_cast<unsigned>(std::strtoul(argv[i] + 7, nullptr, 10)));
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      timeout_ms = std::strtoll(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--timeout-ms=", 13) == 0) {
      timeout_ms = std::strtoll(argv[i] + 13, nullptr, 10);
    } else if (std::strcmp(argv[i], "--memory-budget-mb") == 0 &&
               i + 1 < argc) {
      memory_budget_mb = std::strtoll(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--memory-budget-mb=", 19) == 0) {
      memory_budget_mb = std::strtoll(argv[i] + 19, nullptr, 10);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (smoke) passthrough.push_back(min_time_flag.data());
  int passthrough_argc = static_cast<int>(passthrough.size());

  benchmark::Initialize(&passthrough_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(passthrough_argc,
                                             passthrough.data())) {
    return 1;
  }

  // Per-run deltas: the report should describe this invocation only.
  rq::obs::Registry::Global().ResetAll();
  rq::obs::GaugeRegistry::Global().ResetAll();
  rq::obs::HistogramRegistry::Global().ResetAll();
  // A Chrome trace needs full rows; --trace alone stays aggregate-only.
  rq::obs::SetTraceMode(!chrome_trace_path.empty()
                            ? rq::obs::TraceMode::kFull
                        : trace ? rq::obs::TraceMode::kAggregate
                                : rq::obs::TraceMode::kDisabled);
  if (cache) rq::cache::AutomataCache::Global().SetEnabled(true);

  CaptureReporter reporter;
  {
    rq::ExecContext ctx(timeout_ms > 0
                            ? rq::Deadline::AfterMillis(timeout_ms)
                            : rq::Deadline::Infinite());
    rq::ScopedExecContext scoped(timeout_ms > 0 ? &ctx : nullptr);
    // Always run under a MemContext so the report's mem.* gauges carry
    // per-subsystem peaks for the whole run (budget 0 = unlimited).
    rq::MemContext mem_ctx(
        memory_budget_mb > 0
            ? static_cast<uint64_t>(memory_budget_mb) * 1024 * 1024
            : 0);
    rq::ScopedMemContext scoped_mem(&mem_ctx);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();

  if (!json_path.empty()) {
    rq::obs::JsonValue report =
        ReportJson(Basename(argv[0]), smoke, cache, reporter.captured());
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::string text = report.Dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  if (!chrome_trace_path.empty()) {
    rq::Status status = rq::obs::WriteChromeTraceFile(chrome_trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!prometheus_path.empty()) {
    rq::Status status = rq::obs::WritePrometheusTextFile(prometheus_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

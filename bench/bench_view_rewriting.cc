// E17 ([12], query processing using views): maximal-rewriting construction
// cost (a subset construction over the query's DFA per view), exactness
// checking, and answering from views vs direct evaluation.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "pathquery/path_query.h"
#include "views/rewriting.h"

namespace rq {
namespace {

struct Setup {
  Alphabet alphabet;
  RegexPtr query;
  std::vector<View> views;
};

Setup MakeSetup(size_t num_views, uint64_t seed) {
  Setup s;
  s.alphabet.InternLabel("a");
  s.alphabet.InternLabel("b");
  s.alphabet.InternLabel("c");
  Rng rng(seed);
  s.query = RandomRegex(s.alphabet, 4, false, rng);
  for (size_t i = 0; i < num_views; ++i) {
    s.views.push_back(
        {"v" + std::to_string(i), RandomRegex(s.alphabet, 2, false, rng)});
  }
  return s;
}

void BM_MaximalRewritingViewSweep(benchmark::State& state) {
  const size_t num_views = static_cast<size_t>(state.range(0));
  uint64_t seed = 1;
  uint64_t nonempty = 0;
  uint64_t total = 0;
  for (auto _ : state) {
    Setup s = MakeSetup(num_views, seed++);
    auto rewriting = MaximalRewriting(*s.query, s.views, s.alphabet);
    benchmark::DoNotOptimize(rewriting.ok());
    if (rewriting.ok() && !rewriting->empty) ++nonempty;
    ++total;
  }
  state.counters["nonempty%"] =
      100.0 * static_cast<double>(nonempty) / static_cast<double>(total);
}
BENCHMARK(BM_MaximalRewritingViewSweep)->DenseRange(1, 6);

void BM_ExactnessCheck(benchmark::State& state) {
  Setup s = MakeSetup(3, 42);
  // Letter views make everything exactly rewritable.
  s.views.push_back({"la", ParseRegex("a", &s.alphabet).value()});
  s.views.push_back({"lb", ParseRegex("b", &s.alphabet).value()});
  s.views.push_back({"lc", ParseRegex("c", &s.alphabet).value()});
  auto rewriting = MaximalRewriting(*s.query, s.views, s.alphabet).value();
  for (auto _ : state) {
    auto exact = RewritingIsExact(rewriting, *s.query, s.views, s.alphabet);
    benchmark::DoNotOptimize(exact.ok());
  }
}
BENCHMARK(BM_ExactnessCheck);

void BM_AnswerUsingViewsVsDirect(benchmark::State& state) {
  const bool use_views = state.range(0) == 1;
  Setup s = MakeSetup(2, 7);
  s.views.push_back({"la", ParseRegex("a", &s.alphabet).value()});
  s.views.push_back({"lb", ParseRegex("b", &s.alphabet).value()});
  s.views.push_back({"lc", ParseRegex("c", &s.alphabet).value()});
  auto rewriting = MaximalRewriting(*s.query, s.views, s.alphabet).value();
  GraphDb db = RandomGraph(100, 300, {"a", "b", "c"}, 11);
  for (auto _ : state) {
    if (use_views) {
      Relation answers = AnswerUsingViews(db, rewriting, s.views).value();
      benchmark::DoNotOptimize(answers.size());
    } else {
      auto answers = EvalPathQuery(db, *s.query);
      benchmark::DoNotOptimize(answers.size());
    }
  }
  state.SetLabel(use_views ? "via-views" : "direct");
}
BENCHMARK(BM_AnswerUsingViewsVsDirect)->Arg(0)->Arg(1);

}  // namespace
}  // namespace rq


// Incremental transitive-closure maintenance vs full recomputation:
// processing an edge stream one insertion at a time. The incremental
// algorithm pays only for the new pairs; the recompute baseline re-runs
// the semi-naive fixpoint per edge.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "relational/incremental.h"
#include "rq/eval.h"

namespace rq {
namespace {

std::vector<std::pair<Value, Value>> EdgeStream(size_t nodes, size_t edges,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Value, Value>> out;
  out.reserve(edges);
  for (size_t i = 0; i < edges; ++i) {
    out.emplace_back(rng.Below(nodes), rng.Below(nodes));
  }
  return out;
}

void BM_IncrementalClosureStream(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  auto stream = EdgeStream(nodes, nodes * 2, 7);
  size_t pairs = 0;
  for (auto _ : state) {
    IncrementalClosure inc;
    for (const auto& [x, y] : stream) {
      benchmark::DoNotOptimize(inc.AddEdge(x, y)->pairs_added);
    }
    benchmark::DoNotOptimize(inc.closure().size());
    pairs = inc.closure().size();
  }
  state.counters["closure_pairs"] = static_cast<double>(pairs);
}
BENCHMARK(BM_IncrementalClosureStream)->RangeMultiplier(2)->Range(16, 256);

void BM_RecomputeClosureStream(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  auto stream = EdgeStream(nodes, nodes * 2, 7);
  for (auto _ : state) {
    Relation base(2);
    Relation closure(2);
    for (const auto& [x, y] : stream) {
      base.Insert({x, y});
      closure = BinaryTransitiveClosure(base);
    }
    benchmark::DoNotOptimize(closure.size());
  }
}
BENCHMARK(BM_RecomputeClosureStream)->RangeMultiplier(2)->Range(16, 128);

// Amortized per-edge cost on a long stream.
void BM_IncrementalPerEdge(benchmark::State& state) {
  const size_t nodes = 500;
  Rng rng(99);
  IncrementalClosure inc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        inc.AddEdge(rng.Below(nodes), rng.Below(nodes))->pairs_added);
  }
  state.counters["closure_pairs"] =
      static_cast<double>(inc.closure().size());
}
BENCHMARK(BM_IncrementalPerEdge);

}  // namespace
}  // namespace rq


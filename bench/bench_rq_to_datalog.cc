// E11 (§4.1): the RQ → Datalog embedding. Measures translation throughput,
// the size of the emitted programs, and the evaluation overhead of running
// the translated program (semi-naive Datalog) against direct RQ-algebra
// evaluation on the same data.
#include <benchmark/benchmark.h>

#include "datalog/eval.h"
#include "graph/generators.h"
#include "rq/eval.h"
#include "rq/from_datalog.h"
#include "rq/parser.h"
#include "rq/to_datalog.h"

namespace rq {
namespace {

const char* kQueries[] = {
    "q(x, y) := tc[x,y](r(x, y))",
    "q(x, z) := exists[y](tc[x,y](r(x, y)) & s(y, z))",
    "q(x, y) := tc[x,y]( exists[z]( r(x,y) & r(y,z) & r(z,x) ) )",
    "q(x, y) := tc[x,y](r(x, y) | s(y, x))",
};

void BM_TranslationThroughput(benchmark::State& state) {
  RqQuery q = ParseRq(kQueries[state.range(0)]).value();
  size_t rules = 0;
  for (auto _ : state) {
    auto program = RqToDatalog(q);
    benchmark::DoNotOptimize(program.ok());
    rules = program->rules().size();
  }
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_TranslationThroughput)->DenseRange(0, 3);

void BM_DirectRqEvaluation(benchmark::State& state) {
  RqQuery q = ParseRq(kQueries[state.range(0)]).value();
  GraphDb graph = RandomGraph(120, 360, {"r", "s"}, 17);
  Database db = GraphToDatabase(graph);
  for (auto _ : state) {
    Relation out = EvalRqQuery(db, q).value();
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_DirectRqEvaluation)->DenseRange(0, 3);

void BM_TranslatedDatalogEvaluation(benchmark::State& state) {
  RqQuery q = ParseRq(kQueries[state.range(0)]).value();
  DatalogProgram program = RqToDatalog(q).value();
  GraphDb graph = RandomGraph(120, 360, {"r", "s"}, 17);
  Database db = GraphToDatabase(graph);
  for (auto _ : state) {
    Relation out = EvalDatalogGoal(program, db).value();
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_TranslatedDatalogEvaluation)->DenseRange(0, 3);

// Round trip: RQ -> Datalog -> RQ (GRQ extraction) and evaluate.
void BM_RoundTripExtraction(benchmark::State& state) {
  RqQuery q = ParseRq(kQueries[state.range(0)]).value();
  DatalogProgram program = RqToDatalog(q).value();
  for (auto _ : state) {
    auto extracted = DatalogToRq(program);
    benchmark::DoNotOptimize(extracted.ok());
  }
}
BENCHMARK(BM_RoundTripExtraction)->DenseRange(0, 3);

}  // namespace
}  // namespace rq


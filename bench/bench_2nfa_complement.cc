// E4 (Lemma 4, Vardi 1989): single-exponential 2NFA complementation. Sweeps
// 2NFA size n and reports the complement NFA's state count against the
// 2^O(n) bound (here 4^n pair-states before reachability pruning), and
// compares with the "one-way route" (Shepherdson table DFA, up to
// 2^(n²+n) states, complemented for free by flipping accepting states).
#include <benchmark/benchmark.h>

#include <cmath>

#include "twoway/complement.h"
#include "twoway/random.h"
#include "twoway/tables.h"

namespace rq {
namespace {

void BM_VardiComplementSizeSweep(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  uint64_t built = 0;
  uint64_t states = 0;
  uint64_t failures = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    TwoNfa m = RandomTwoNfa(n, 2, 3, seed++);
    auto comp = VardiComplementNfa(m, 4000000);
    if (!comp.ok()) {
      ++failures;
      continue;
    }
    benchmark::DoNotOptimize(comp->num_states());
    states += comp->num_states();
    ++built;
  }
  if (built > 0) {
    state.counters["avg_states"] =
        static_cast<double>(states) / static_cast<double>(built);
    state.counters["bound_4^n"] = std::pow(4.0, static_cast<double>(n));
  }
  state.counters["budget_failures"] = static_cast<double>(failures);
}
BENCHMARK(BM_VardiComplementSizeSweep)->DenseRange(2, 7);

void BM_TableDfaRouteSizeSweep(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  uint64_t built = 0;
  uint64_t states = 0;
  uint64_t failures = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    TwoNfa m = RandomTwoNfa(n, 2, 3, seed++);
    auto dfa = MaterializeTableDfa(m, 4000000);
    if (!dfa.ok()) {
      ++failures;
      continue;
    }
    // Complementing a DFA is free; the cost is the determinization itself.
    benchmark::DoNotOptimize(dfa->Complemented().num_states());
    states += dfa->num_states();
    ++built;
  }
  if (built > 0) {
    state.counters["avg_states"] =
        static_cast<double>(states) / static_cast<double>(built);
  }
  state.counters["budget_failures"] = static_cast<double>(failures);
}
BENCHMARK(BM_TableDfaRouteSizeSweep)->DenseRange(2, 7);

// Membership through the complement (how usable the artifacts are).
void BM_VardiComplementMembership(benchmark::State& state) {
  TwoNfa m = RandomTwoNfa(4, 2, 3, 99);
  auto comp = VardiComplementNfa(m, 4000000);
  if (!comp.ok()) {
    state.SkipWithError("complement over budget");
    return;
  }
  std::vector<Symbol> word;
  for (int i = 0; i < 8; ++i) word.push_back(i % 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(comp->Accepts(word));
  }
}
BENCHMARK(BM_VardiComplementMembership);

}  // namespace
}  // namespace rq


// E12 (§2.2): the Datalog engine — naive vs semi-naive fixpoints on the
// classic recursive workloads (transitive closure, same-generation). The
// headline series is the widening gap in joins performed as the data grows.
#include <benchmark/benchmark.h>

#include "datalog/eval.h"
#include "graph/generators.h"
#include "rq/eval.h"

namespace rq {
namespace {

DatalogProgram Tc() {
  return ParseDatalog(R"(
    tc(X, Y) :- edge(X, Y).
    tc(X, Z) :- tc(X, Y), edge(Y, Z).
    ?- tc.
  )")
      .value();
}

DatalogProgram SameGeneration() {
  return ParseDatalog(R"(
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
    ?- sg.
  )")
      .value();
}

void RunTcBenchmark(benchmark::State& state, DatalogEvalMode mode) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  GraphDb graph = PathGraph(nodes, "edge");
  Database db = GraphToDatabase(graph);
  DatalogProgram program = Tc();
  DatalogEvalStats stats;
  for (auto _ : state) {
    Relation out = EvalDatalogGoal(program, db, mode, &stats).value();
    benchmark::DoNotOptimize(out.size());
  }
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["tuples_considered"] =
      static_cast<double>(stats.tuples_considered);
}

void BM_TcChainNaive(benchmark::State& state) {
  RunTcBenchmark(state, DatalogEvalMode::kNaive);
}
BENCHMARK(BM_TcChainNaive)->RangeMultiplier(2)->Range(16, 128);

void BM_TcChainSemiNaive(benchmark::State& state) {
  RunTcBenchmark(state, DatalogEvalMode::kSemiNaive);
}
BENCHMARK(BM_TcChainSemiNaive)->RangeMultiplier(2)->Range(16, 128);

void RunRandomTc(benchmark::State& state, DatalogEvalMode mode) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  GraphDb graph = RandomGraph(nodes, nodes * 2, {"edge"}, 77);
  Database db = GraphToDatabase(graph);
  DatalogProgram program = Tc();
  DatalogEvalStats stats;
  for (auto _ : state) {
    Relation out = EvalDatalogGoal(program, db, mode, &stats).value();
    benchmark::DoNotOptimize(out.size());
  }
  state.counters["tuples_considered"] =
      static_cast<double>(stats.tuples_considered);
}

void BM_TcRandomNaive(benchmark::State& state) {
  RunRandomTc(state, DatalogEvalMode::kNaive);
}
BENCHMARK(BM_TcRandomNaive)->RangeMultiplier(2)->Range(32, 256);

void BM_TcRandomSemiNaive(benchmark::State& state) {
  RunRandomTc(state, DatalogEvalMode::kSemiNaive);
}
BENCHMARK(BM_TcRandomSemiNaive)->RangeMultiplier(2)->Range(32, 256);

void RunSameGeneration(benchmark::State& state, DatalogEvalMode mode) {
  const size_t depth = static_cast<size_t>(state.range(0));
  // Complete binary tree of the given depth.
  Database db;
  Relation* up = db.GetOrCreate("up", 2).value();
  Relation* down = db.GetOrCreate("down", 2).value();
  Relation* flat = db.GetOrCreate("flat", 2).value();
  size_t num_nodes = (1u << (depth + 1)) - 1;
  for (size_t child = 1; child < num_nodes; ++child) {
    size_t parent = (child - 1) / 2;
    up->Insert({child, parent});
    down->Insert({parent, child});
  }
  flat->Insert({0, 0});
  DatalogProgram program = SameGeneration();
  DatalogEvalStats stats;
  for (auto _ : state) {
    Relation out = EvalDatalogGoal(program, db, mode, &stats).value();
    benchmark::DoNotOptimize(out.size());
  }
  state.counters["tuples_considered"] =
      static_cast<double>(stats.tuples_considered);
}

void BM_SameGenerationNaive(benchmark::State& state) {
  RunSameGeneration(state, DatalogEvalMode::kNaive);
}
BENCHMARK(BM_SameGenerationNaive)->DenseRange(3, 8);

void BM_SameGenerationSemiNaive(benchmark::State& state) {
  RunSameGeneration(state, DatalogEvalMode::kSemiNaive);
}
BENCHMARK(BM_SameGenerationSemiNaive)->DenseRange(3, 8);

}  // namespace
}  // namespace rq


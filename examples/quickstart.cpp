// Quickstart: build a graph database, run queries from every class in the
// paper's ladder (RPQ → 2RPQ → C2RPQ → RQ → Datalog/GRQ), and decide a few
// containments.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "containment/containment.h"
#include "crpq/crpq.h"
#include "datalog/eval.h"
#include "graph/graph_db.h"
#include "pathquery/containment.h"
#include "pathquery/path_query.h"
#include "rq/eval.h"
#include "rq/from_datalog.h"
#include "rq/parser.h"

using namespace rq;  // examples only; library code never does this

int main() {
  // --- A tiny graph database (paper §3.1): nodes + labeled edges. -------
  GraphDb db;
  NodeId alice = db.AddNamedNode("alice");
  NodeId bob = db.AddNamedNode("bob");
  NodeId carol = db.AddNamedNode("carol");
  NodeId dave = db.AddNamedNode("dave");
  db.AddEdge(alice, "knows", bob);
  db.AddEdge(bob, "knows", carol);
  db.AddEdge(carol, "knows", dave);
  db.AddEdge(dave, "knows", bob);

  // --- RPQ: who does alice reach over one or more "knows" edges? --------
  PathQuery reach = ParsePathQuery("knows+", &db.alphabet()).value();
  std::printf("RPQ knows+ from alice:\n");
  Nfa nfa = reach.regex->ToNfa(
      static_cast<uint32_t>(db.alphabet().num_symbols()));
  for (NodeId y : EvalPathQueryFrom(db, nfa, alice)) {
    std::printf("  alice -> %s\n", db.NodeName(y).c_str());
  }

  // --- 2RPQ: inverse edges walk backwards (paper §3.1). -----------------
  PathQuery same_friend =
      ParsePathQuery("knows knows-", &db.alphabet()).value();
  std::printf("2RPQ 'knows knows-' (people sharing an acquaintance):\n");
  for (const auto& [x, y] : EvalPathQuery(db, *same_friend.regex)) {
    if (x < y) {
      std::printf("  %s ~ %s\n", db.NodeName(x).c_str(),
                  db.NodeName(y).c_str());
    }
  }

  // --- 2RPQ containment (paper §3.2): p ⊑ p p⁻ p, a containment that
  // language inclusion alone cannot see. --------------------------------
  Alphabet sigma;
  RegexPtr p = ParseRegex("p", &sigma).value();
  RegexPtr ppp = ParseRegex("p p- p", &sigma).value();
  PathContainmentResult c = CheckPathQueryContainment(*p, *ppp, sigma);
  std::printf("2RPQ containment  p ⊑ p p- p : %s (fold pipeline: %s)\n",
              c.contained ? "yes" : "no",
              c.used_fold_pipeline ? "used" : "not needed");

  // --- C2RPQ (paper §3.3): conjunction of path atoms. -------------------
  auto crpq = ParseCrpq("q(x, y) :- (knows+)(x, y), (knows)(y, x)",
                        &db.alphabet())
                  .value();
  std::printf("C2RPQ answers (reaches + direct back-edge):\n");
  for (const Tuple& t : EvalCrpq(db, crpq).value().SortedTuples()) {
    std::printf("  (%s, %s)\n",
                db.NodeName(static_cast<NodeId>(t[0])).c_str(),
                db.NodeName(static_cast<NodeId>(t[1])).c_str());
  }

  // --- RQ (paper §3.4): transitive closure of a non-path pattern. -------
  RqQuery triangle_tc =
      ParseRq("q(x, y) := tc[x,y]( exists[z]( knows(x,y) & knows(y,z) & "
              "knows(z,x) ) )")
          .value();
  Database relational = GraphToDatabase(db);
  Relation rq_answers = EvalRqQuery(relational, triangle_tc).value();
  std::printf("RQ triangle-closure answers: %zu tuples\n",
              rq_answers.size());

  // --- GRQ (paper §4): Datalog whose recursion is transitive closure. ---
  DatalogProgram program = ParseDatalog(R"(
    connected(X, Y) :- knows(X, Y).
    connected(X, Z) :- connected(X, Y), knows(Y, Z).
    ?- connected.
  )")
                               .value();
  GrqAnalysis analysis = AnalyzeGrq(program);
  std::printf("Datalog program is GRQ: %s\n",
              analysis.is_grq ? "yes" : analysis.reason.c_str());
  Relation datalog_answers =
      EvalDatalogGoal(program, relational).value();
  std::printf("Datalog 'connected' answers: %zu tuples\n",
              datalog_answers.size());

  // --- Containment with certificates. -----------------------------------
  DatalogProgram wider = ParseDatalog(R"(
    connected(X, Y) :- knows(X, Y).
    connected(X, Y) :- likes(X, Y).
    connected(X, Z) :- connected(X, Y), knows(Y, Z).
    connected(X, Z) :- connected(X, Y), likes(Y, Z).
    ?- connected.
  )")
                             .value();
  auto verdict = CheckDatalogContainment(program, wider).value();
  std::printf("knows-TC ⊑ (knows|likes)-TC : %s via %s\n",
              CertaintyName(verdict.certainty), verdict.method.c_str());
  auto reverse = CheckDatalogContainment(wider, program).value();
  std::printf("(knows|likes)-TC ⊑ knows-TC : %s via %s\n",
              CertaintyName(reverse.certainty), reverse.method.c_str());
  if (reverse.counterexample.has_value()) {
    std::printf("  counterexample database:\n%s",
                reverse.counterexample->ToString().c_str());
  }
  return 0;
}

// rqserved — long-lived concurrent query service over the framed JSON
// protocol (docs/SERVING.md).
//
//   rqserved [--bind ADDR] [--port N] [--port-file <path>]
//            [--graph <file>] [--workers N] [--jobs N]
//            [--max-queue-depth N] [--max-connections N]
//            [--max-inflight-mb N]
//            [--default-timeout-ms N] [--max-timeout-ms N]
//            [--default-memory-budget-mb N] [--max-memory-budget-mb N]
//            [--read-only] [--incr-delta-budget N] [--eval-cache-mb N]
//            [--no-cache] [--enable-sleep] [--flight-dump <path>]
//     --bind ADDR         listen address (default 127.0.0.1)
//     --port N            listen port (default 0 = ephemeral; the chosen
//                         port is printed and written to --port-file)
//     --port-file <path>  write the bound port as a decimal line (how
//                         tests and bench scripts find an ephemeral port)
//     --graph <file>      preload a graph database for eval requests that
//                         do not carry an inline graph
//     --workers N         request worker threads (default 4)
//     --jobs N            per-request inner parallelism: batched
//                         per-disjunct containment checks and
//                         multi-source graph evaluation (default 1)
//     --max-queue-depth N shed (respond `overloaded`) once this many
//                         requests await a worker (default 128)
//     --max-connections N refuse connections beyond this many (default
//                         1024)
//     --max-inflight-mb N shed new requests while in-flight request
//                         memory exceeds this (default 0 = no threshold)
//     --default-timeout-ms / --max-timeout-ms
//                         per-request wall-clock budget default and cap
//     --default-memory-budget-mb / --max-memory-budget-mb
//                         per-request byte budget default and cap
//     --read-only         refuse `update` requests (invalid_request); the
//                         graph stays frozen at the --graph load
//     --incr-delta-budget N
//                         per-insert bound on the incremental closure
//                         delta product before the label falls back to
//                         full re-evaluation (default 1048576; 0 =
//                         unbounded; docs/SERVING.md "Updates")
//     --eval-cache-mb N   byte budget of the epoch-keyed eval answer
//                         cache (default 8; 0 disables it)
//     --no-cache          disable the content-addressed automata cache
//                         (on by default: a long-lived server is exactly
//                         the workload the cache exists for)
//     --enable-sleep      allow `sleep` requests (tests/bench only)
//     --flight-dump <path> flush the flight recorder here when draining
//
// The same port answers HTTP: GET /metrics returns the Prometheus
// exposition, GET /healthz a liveness line. SIGTERM / SIGINT triggers a
// graceful drain: accepting stops, in-flight requests complete, late
// frames get `draining` responses, then the process exits 0.
#include <errno.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "cache/automata_cache.h"
#include "containment/batch.h"
#include "graph/graph_db.h"
#include "obs/flight_recorder.h"
#include "server/server.h"

using namespace rq;  // examples only

namespace {

int g_signal_pipe[2] = {-1, -1};

void OnShutdownSignal(int) {
  char byte = 1;
  ssize_t ignored = write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "rqserved: %s\n", message.c_str());
  return 1;
}

bool ParseIntFlag(const std::string& arg, int argc, char** argv, int* i,
                  const char* name, int64_t* out) {
  std::string prefix = std::string(name) + "=";
  if (arg == name && *i + 1 < argc) {
    *out = std::strtoll(argv[++*i], nullptr, 10);
    return true;
  }
  if (arg.rfind(prefix, 0) == 0) {
    *out = std::strtoll(arg.c_str() + prefix.size(), nullptr, 10);
    return true;
  }
  return false;
}

bool ParseStringFlag(const std::string& arg, int argc, char** argv, int* i,
                     const char* name, std::string* out) {
  std::string prefix = std::string(name) + "=";
  if (arg == name && *i + 1 < argc) {
    *out = argv[++*i];
    return true;
  }
  if (arg.rfind(prefix, 0) == 0) {
    *out = arg.substr(prefix.size());
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerOptions options;
  std::string graph_file;
  std::string port_file;
  int64_t port = 0;
  int64_t workers = 4;
  int64_t jobs = 0;
  int64_t max_queue_depth = -1;
  int64_t max_connections = -1;
  int64_t max_inflight_mb = 0;
  int64_t incr_delta_budget = -1;
  int64_t eval_cache_mb = -1;
  bool use_cache = true;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (ParseStringFlag(arg, argc, argv, &i, "--bind",
                        &options.bind_address) ||
        ParseStringFlag(arg, argc, argv, &i, "--graph", &graph_file) ||
        ParseStringFlag(arg, argc, argv, &i, "--port-file", &port_file) ||
        ParseStringFlag(arg, argc, argv, &i, "--flight-dump",
                        &options.flight_dump_path) ||
        ParseIntFlag(arg, argc, argv, &i, "--port", &port) ||
        ParseIntFlag(arg, argc, argv, &i, "--workers", &workers) ||
        ParseIntFlag(arg, argc, argv, &i, "--jobs", &jobs) ||
        ParseIntFlag(arg, argc, argv, &i, "--max-queue-depth",
                     &max_queue_depth) ||
        ParseIntFlag(arg, argc, argv, &i, "--max-connections",
                     &max_connections) ||
        ParseIntFlag(arg, argc, argv, &i, "--max-inflight-mb",
                     &max_inflight_mb) ||
        ParseIntFlag(arg, argc, argv, &i, "--default-timeout-ms",
                     &options.default_timeout_ms) ||
        ParseIntFlag(arg, argc, argv, &i, "--max-timeout-ms",
                     &options.max_timeout_ms) ||
        ParseIntFlag(arg, argc, argv, &i, "--default-memory-budget-mb",
                     &options.default_memory_budget_mb) ||
        ParseIntFlag(arg, argc, argv, &i, "--max-memory-budget-mb",
                     &options.max_memory_budget_mb) ||
        ParseIntFlag(arg, argc, argv, &i, "--incr-delta-budget",
                     &incr_delta_budget) ||
        ParseIntFlag(arg, argc, argv, &i, "--eval-cache-mb",
                     &eval_cache_mb)) {
      continue;
    }
    if (arg == "--read-only") {
      options.enable_updates = false;
    } else if (arg == "--no-cache") {
      use_cache = false;
    } else if (arg == "--enable-sleep") {
      options.enable_sleep = true;
    } else {
      return Fail("unknown flag '" + arg + "' (see the header comment)");
    }
  }

  if (port < 0 || port > 65535) return Fail("--port out of range");
  options.port = static_cast<uint16_t>(port);
  if (workers > 0) options.workers = static_cast<unsigned>(workers);
  if (max_queue_depth >= 0) {
    options.max_queue_depth = static_cast<size_t>(max_queue_depth);
  }
  if (max_connections > 0) {
    options.max_connections = static_cast<size_t>(max_connections);
  }
  if (max_inflight_mb > 0) {
    options.max_inflight_bytes =
        static_cast<uint64_t>(max_inflight_mb) * 1024 * 1024;
  }
  if (incr_delta_budget >= 0) {
    options.incr_delta_budget = static_cast<size_t>(incr_delta_budget);
  }
  if (eval_cache_mb >= 0) {
    options.eval_cache_bytes =
        static_cast<size_t>(eval_cache_mb) * 1024 * 1024;
  }
  if (jobs > 0) SetDefaultContainmentJobs(static_cast<unsigned>(jobs));
  cache::AutomataCache::Global().SetEnabled(use_cache);

  GraphDb graph;
  if (!graph_file.empty()) {
    std::ifstream in(graph_file);
    if (!in) return Fail("cannot open " + graph_file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto parsed = GraphDb::FromText(buffer.str());
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    graph = std::move(parsed).value();
    options.graph = &graph;
  }

  obs::InstallFlightSignalHandler();
  obs::SetFlightQueryLabel("rqserved");

  if (pipe(g_signal_pipe) < 0) {
    return Fail(std::string("pipe: ") + std::strerror(errno));
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnShutdownSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  signal(SIGPIPE, SIG_IGN);

  server::QueryServer server(options);
  if (Status status = server.Start(); !status.ok()) {
    return Fail(status.ToString());
  }
  std::printf("rqserved listening on %s:%u (workers=%u)\n",
              options.bind_address.c_str(), server.port(), options.workers);
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << '\n';
    if (!out) return Fail("cannot write " + port_file);
  }

  // Block until SIGTERM / SIGINT, then drain.
  char byte;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "rqserved: draining\n");
  server.DrainAndWait();
  std::fprintf(stderr, "rqserved: drained, exiting\n");
  return 0;
}

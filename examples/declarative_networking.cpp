// Declarative networking (the paper's §1/§2.2 motivation for recursion):
// routing reachability as Datalog over a synthetic network, with the
// connectivity program landing in the GRQ fragment — so its containment
// questions are decidable (Theorem 8).
//
// The scenario: a network of routers with "link" edges and per-link "acl"
// (permitted) edges. Two route definitions are compared:
//   route  — any path over links,
//   secure — any path over links that are also permitted.
// The GRQ checker proves secure ⊑ route and refutes route ⊑ secure with a
// concrete network on which they differ.
//
//   ./build/examples/declarative_networking
#include <cstdio>

#include "common/rng.h"
#include "containment/containment.h"
#include "datalog/eval.h"
#include "graph/graph_db.h"
#include "rq/eval.h"
#include "rq/from_datalog.h"

using namespace rq;  // examples only

int main() {
  // --- Synthetic network: ring + random chords, ACL on most links. ------
  GraphDb net;
  const size_t kRouters = 24;
  net.EnsureNodes(kRouters);
  uint32_t link = net.alphabet().InternLabel("link");
  uint32_t acl = net.alphabet().InternLabel("acl");
  Rng rng(7);
  for (size_t i = 0; i < kRouters; ++i) {
    NodeId a = static_cast<NodeId>(i);
    NodeId b = static_cast<NodeId>((i + 1) % kRouters);
    net.AddEdge(a, link, b);
    if (rng.Chance(0.8)) net.AddEdge(a, acl, b);
  }
  for (int chord = 0; chord < 10; ++chord) {
    NodeId a = static_cast<NodeId>(rng.Below(kRouters));
    NodeId b = static_cast<NodeId>(rng.Below(kRouters));
    if (a == b) continue;
    net.AddEdge(a, link, b);
    if (rng.Chance(0.5)) net.AddEdge(a, acl, b);
  }
  std::printf("network: %zu routers, %zu edges\n", net.num_nodes(),
              net.num_edges());

  // --- Connectivity as Datalog ("there is a network connection of some
  // unknown length between X and Y", §2.2). ------------------------------
  DatalogProgram route = ParseDatalog(R"(
    route(X, Y) :- link(X, Y).
    route(X, Z) :- route(X, Y), link(Y, Z).
    ?- route.
  )")
                             .value();
  // Secure routes: every hop must be both a link and permitted. The hop
  // relation is a conjunctive subgoal; the recursion is still pure TC.
  DatalogProgram secure = ParseDatalog(R"(
    hop(X, Y) :- link(X, Y), acl(X, Y).
    secure(X, Y) :- hop(X, Y).
    secure(X, Z) :- secure(X, Y), hop(Y, Z).
    ?- secure.
  )")
                              .value();

  std::printf("route  is GRQ: %s\n",
              AnalyzeGrq(route).is_grq ? "yes" : "no");
  std::printf("secure is GRQ: %s\n",
              AnalyzeGrq(secure).is_grq ? "yes" : "no");

  Database db = GraphToDatabase(net);
  Relation route_pairs = EvalDatalogGoal(route, db).value();
  Relation secure_pairs = EvalDatalogGoal(secure, db).value();
  std::printf("reachable pairs: route=%zu secure=%zu\n",
              route_pairs.size(), secure_pairs.size());

  // --- Containment: policy questions answered statically. ---------------
  auto fwd = CheckDatalogContainment(secure, route).value();
  std::printf("secure ⊑ route : %s (method %s)\n",
              CertaintyName(fwd.certainty), fwd.method.c_str());

  auto bwd = CheckDatalogContainment(route, secure).value();
  std::printf("route ⊑ secure : %s (method %s)\n",
              CertaintyName(bwd.certainty), bwd.method.c_str());
  if (bwd.counterexample.has_value()) {
    std::printf("  a network separating them:\n%s",
                bwd.counterexample->ToString().c_str());
    std::printf("  witness pair: (%llu, %llu)\n",
                static_cast<unsigned long long>(bwd.witness_tuple[0]),
                static_cast<unsigned long long>(bwd.witness_tuple[1]));
  }

  // --- Monadic Datalog cannot express this (paper §2.3): the binary
  // connectivity predicate is exactly what monadic recursion lacks. ------
  std::printf("route program is monadic: %s (recursive binary predicate)\n",
              route.IsMonadic() ? "yes" : "no");
  return 0;
}

// XPath-style navigation on a family tree (the paper's §3.1 motivation for
// inverse edges: "the predecessor axis of XPath"). Every axis is a 2RPQ:
//
//   child        = parent-          (inverse of the parent edge)
//   ancestor     = parent+
//   descendant   = parent-+
//   sibling      = parent parent-   (minus self, filtered)
//   cousin       = parent parent parent- parent-
//
// Witness semipaths explain each answer edge by edge.
//
//   ./build/examples/family_tree
#include <cstdio>

#include "automata/nfa.h"
#include "pathquery/path_query.h"
#include "pathquery/witness.h"

using namespace rq;  // examples only

int main() {
  GraphDb tree;
  // Three generations. parent(x, y) = y is x's parent.
  struct Pair {
    const char* child;
    const char* parent;
  } edges[] = {
      {"alice", "carol"}, {"bob", "carol"},   {"carol", "erin"},
      {"dave", "frank"},  {"erin", "gina"},   {"frank", "gina"},
      {"heidi", "erin"},  {"ivan", "frank"},
  };
  for (const Pair& e : edges) {
    tree.AddEdge(tree.AddNamedNode(e.child), "parent",
                 tree.AddNamedNode(e.parent));
  }
  std::printf("family tree: %zu people, %zu parent edges\n",
              tree.num_nodes(), tree.num_edges());

  auto run = [&](const char* name, const char* query) {
    auto q = ParsePathQuery(query, &tree.alphabet()).value();
    auto pairs = EvalPathQuery(tree, *q.regex);
    std::printf("%-36s (%s): %zu pairs\n", name, query, pairs.size());
    return q;
  };

  run("ancestor", "parent+");
  run("descendant", "parent-+");
  PathQuery sibling = run("sibling-or-self", "parent parent-");
  PathQuery cousin =
      run("cousin-or-sibling", "parent parent parent- parent-");

  // Siblings proper: filter the reflexive pairs.
  std::printf("siblings:\n");
  for (const auto& [x, y] : EvalPathQuery(tree, *sibling.regex)) {
    if (x < y) {
      std::printf("  %s ~ %s\n", tree.NodeName(x).c_str(),
                  tree.NodeName(y).c_str());
    }
  }

  // Explain a cousin pair with a witness semipath: alice and dave are
  // second cousins through gina... check with the cousin axis first.
  NodeId alice = tree.FindNode("alice").value();
  NodeId dave = tree.FindNode("dave").value();
  auto cousin_witness =
      FindWitnessSemipath(tree, *cousin.regex, alice, dave);
  if (cousin_witness.has_value()) {
    std::printf("why alice ~ dave (cousin axis):\n  %s\n",
                SemipathToString(tree, *cousin_witness).c_str());
  } else {
    std::printf("alice ~ dave are not (first) cousins\n");
  }

  // The pibling (aunt/uncle) axis: parent parent parent⁻, a genuinely
  // two-way navigation. heidi is alice's great-aunt via this axis applied
  // to carol; show alice's piblings with witnesses.
  auto pibling =
      ParsePathQuery("parent parent parent-", &tree.alphabet()).value();
  std::printf("pibling axis (parent parent parent-):\n");
  Nfa pibling_nfa = pibling.regex->ToNfa(
      static_cast<uint32_t>(tree.alphabet().num_symbols()));
  for (NodeId y : EvalPathQueryFrom(tree, pibling_nfa, alice)) {
    auto why = FindWitnessSemipath(tree, *pibling.regex, alice, y);
    std::printf("  alice -> %s:  %s\n", tree.NodeName(y).c_str(),
                why.has_value() ? SemipathToString(tree, *why).c_str()
                                : "?");
  }
  return 0;
}

// Containment-driven query optimization (the paper's §1/§2.3 framing:
// "query equivalence can be reduced to query containment"), using the
// library's optimize/ module:
//
//   1. UCQ disjunct pruning (Sagiv-Yannakakis).
//   2. CQ core computation (Chandra-Merlin minimization).
//   3. 2RPQ rewrite validation (Theorem 5's fold pipeline).
//
//   ./build/examples/query_optimizer
#include <cstdio>

#include "optimize/minimize.h"

using namespace rq;  // examples only

int main() {
  // --- 1. UCQ disjunct pruning. ------------------------------------------
  UnionOfConjunctiveQueries ucq = ParseUcq(
      "q(x, y) :- e(x, y)\n"
      "q(x, y) :- e(x, y), e(y, z)\n"          // subsumed by the first
      "q(x, y) :- f(x, y), f(y, x)\n")
                                      .value();
  std::printf("UCQ before pruning: %zu disjuncts\n", ucq.disjuncts.size());
  UnionOfConjunctiveQueries pruned = PruneRedundantDisjuncts(ucq).value();
  std::printf("UCQ after pruning:  %zu disjuncts\n%s",
              pruned.disjuncts.size(), pruned.ToString().c_str());

  // --- 2. CQ core computation. --------------------------------------------
  ConjunctiveQuery cq =
      ParseCq("q(x, y) :- e(x, y), e(x, z), e(w, z)").value();
  std::printf("CQ before minimization: %zu atoms: %s\n", cq.atoms.size(),
              cq.ToString().c_str());
  ConjunctiveQuery core = MinimizeConjunctiveQuery(cq).value();
  std::printf("CQ core:                %zu atoms: %s\n", core.atoms.size(),
              core.ToString().c_str());

  // --- 3. Validating 2RPQ rewrites. ----------------------------------------
  Alphabet sigma;
  RegexPtr original = ParseRegex("p (p- p)*", &sigma).value();
  struct Candidate {
    const char* text;
  } candidates[] = {{"p"}, {"(p p-)* p"}, {"p (p- | p)*"}, {"q"}};
  for (const Candidate& c : candidates) {
    RegexPtr proposed = ParseRegex(c.text, &sigma).value();
    RewriteVerdict verdict =
        ValidatePathRewrite(*original, *proposed, sigma);
    std::printf("rewrite p (p- p)* => %-12s : %s%s\n", c.text,
                RewriteVerdictName(verdict),
                verdict == RewriteVerdict::kEquivalent ? "  [adopt]" : "");
  }
  return 0;
}

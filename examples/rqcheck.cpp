// rqcheck — command-line containment checker for every query class in the
// paper's ladder.
//
//   rqcheck [--trace] [--profile] [--profile-json <path>]
//           [--stats-json <path>] [--chrome-trace <path>]
//           [--flight-dump <path>] [--prometheus <path>]
//           [--cache] [--jobs N] [--timeout-ms N] [--memory-budget-mb N]
//           <class> <query1> <query2>
//     class  : rpq | 2rpq | cq | ucq | uc2rpq | rq | rq-equiv | datalog
//     queryN : query text, or @path to read the text from a file
//     --trace             print the span tree of the check (plus non-zero
//                         counters/gauges/histograms and any dropped-span
//                         count) to stderr
//     --profile           print an EXPLAIN ANALYZE-style per-query report
//                         (counter deltas, windowed distributions, gauge
//                         levels, batch-worker rows) after the verdict
//     --profile-json <path> write the same report as JSON (schema
//                         "rq-profile/1") to <path>
//     --stats-json <path> write the observability snapshot (counters,
//                         gauges, histograms, spans; schema "rq-obs/2")
//                         to <path>
//     --chrome-trace <path> write the spans as Chrome trace-event JSON
//                         (Perfetto / chrome://tracing; one lane per
//                         batch worker thread)
//     --flight-dump <path> write the flight recorder's ring of completed
//                         queries plus the slow-query log to <path>
//                         ("-" = stderr); the ring also dumps to stderr
//                         from the fatal-signal handler
//     --prometheus <path> write every counter, gauge, and histogram in
//                         Prometheus text exposition format to <path>
//     --cache             enable the content-addressed automata/verdict
//                         cache (docs/CACHING.md); cache.* counters report
//                         hits/misses/evictions
//     --jobs N            worker threads for batched per-disjunct
//                         containment checks (default 1 = serial)
//     --timeout-ms N      wall-clock budget for the whole check; expiry
//                         fails with DeadlineExceeded (exit 3) instead of
//                         hanging, and bumps the deadline.expired counter
//                         (docs/ROBUSTNESS.md)
//     --memory-budget-mb N byte budget for the whole check (common/mem.h):
//                         crossing it fails with ResourceExhausted
//                         (exit 4, not a crash) through the same polling
//                         sites as --timeout-ms, and bumps the
//                         mem.budget_exceeded counter. The check always
//                         runs under a MemContext, so --profile reports a
//                         per-subsystem peak-byte breakdown either way
//                         (docs/OBSERVABILITY.md "Memory accounting")
//
// Examples:
//   rqcheck 2rpq 'p' 'p p- p'
//   rqcheck cq 'q(x,y) :- e(x,y), e(y,z)' 'q(x,y) :- e(x,y)'
//   rqcheck rq 'q(x,y) := tc[x,y](a(x,y) & b(x,y))' 'q(x,y) := tc[x,y](a(x,y))'
//   rqcheck datalog @prog1.dl @prog2.dl
//
// Exit code: 0 = contained (proved), 1 = refuted, 2 = unknown-up-to-bound,
// 3 = usage/parse error, 4 = memory budget exceeded.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include <vector>

#include "cache/automata_cache.h"
#include "common/deadline.h"
#include "common/mem.h"
#include "containment/batch.h"
#include "containment/containment.h"
#include "rq/equivalence.h"
#include "crpq/crpq.h"
#include "obs/chrome_trace.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/profile.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "pathquery/containment.h"
#include "relational/cq.h"
#include "rq/parser.h"

using namespace rq;  // examples only

namespace {

std::string LoadArg(const std::string& arg) {
  if (arg.empty() || arg[0] != '@') return arg;
  std::ifstream in(arg.substr(1));
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Report(Certainty certainty, const std::string& method,
           const std::optional<Database>& counterexample) {
  std::printf("verdict: %s (method: %s)\n", CertaintyName(certainty),
              method.c_str());
  if (counterexample.has_value()) {
    std::printf("counterexample database:\n%s",
                counterexample->ToString().c_str());
  }
  switch (certainty) {
    case Certainty::kProved:
      return 0;
    case Certainty::kRefuted:
      return 1;
    case Certainty::kUnknownUpToBound:
      return 2;
  }
  return 3;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "rqcheck: %s\n", message.c_str());
  return 3;
}

int RunCheck(const std::string& cls, const std::string& t1,
             const std::string& t2) {

  if (cls == "rpq" || cls == "2rpq") {
    Alphabet alphabet;
    auto r1 = ParseRegex(t1, &alphabet);
    auto r2 = ParseRegex(t2, &alphabet);
    if (!r1.ok()) return Fail(r1.status().ToString());
    if (!r2.ok()) return Fail(r2.status().ToString());
    PathContainmentResult result =
        CheckPathQueryContainment(**r1, **r2, alphabet);
    if (!result.status.ok()) return Fail(result.status.ToString());
    std::printf("verdict: %s (pipeline: %s)\n",
                result.contained ? "proved" : "refuted",
                result.used_fold_pipeline ? "2rpq-fold" : "lemma1");
    if (!result.contained) {
      std::printf("counterexample word: %s\n",
                  WordToString(alphabet, result.counterexample).c_str());
    }
    return result.contained ? 0 : 1;
  }
  if (cls == "cq" || cls == "ucq") {
    auto q1 = ParseUcq(t1);
    auto q2 = ParseUcq(t2);
    if (!q1.ok()) return Fail(q1.status().ToString());
    if (!q2.ok()) return Fail(q2.status().ToString());
    auto contained = UcqContained(*q1, *q2);
    if (!contained.ok()) return Fail(contained.status().ToString());
    std::printf("verdict: %s (method: %s)\n",
                *contained ? "proved" : "refuted",
                q1->disjuncts.size() == 1 && q2->disjuncts.size() == 1
                    ? "chandra-merlin"
                    : "sagiv-yannakakis");
    return *contained ? 0 : 1;
  }
  if (cls == "uc2rpq") {
    Alphabet alphabet;
    auto q1 = ParseUc2Rpq(t1, &alphabet);
    auto q2 = ParseUc2Rpq(t2, &alphabet);
    if (!q1.ok()) return Fail(q1.status().ToString());
    if (!q2.ok()) return Fail(q2.status().ToString());
    auto result = CheckUc2RpqContainment(*q1, *q2, alphabet);
    if (!result.ok()) return Fail(result.status().ToString());
    std::printf("verdict: %s (method: %s)\n",
                CertaintyName(result->certainty), result->method.c_str());
    if (result->truncated) {
      std::printf(
          "note: expansion set truncated at the budget; verdict covers "
          "only the explored expansions\n");
    }
    if (result->counterexample.has_value()) {
      std::printf("counterexample graph:\n%s",
                  result->counterexample->ToText().c_str());
    }
    return result->certainty == Certainty::kProved    ? 0
           : result->certainty == Certainty::kRefuted ? 1
                                                      : 2;
  }
  if (cls == "rq") {
    auto q1 = ParseRq(t1);
    auto q2 = ParseRq(t2);
    if (!q1.ok()) return Fail(q1.status().ToString());
    if (!q2.ok()) return Fail(q2.status().ToString());
    auto result = CheckRqContainment(*q1, *q2);
    if (!result.ok()) return Fail(result.status().ToString());
    return Report(result->certainty, result->method,
                  result->counterexample);
  }
  if (cls == "rq-equiv") {
    auto q1 = ParseRq(t1);
    auto q2 = ParseRq(t2);
    if (!q1.ok()) return Fail(q1.status().ToString());
    if (!q2.ok()) return Fail(q2.status().ToString());
    auto result = CheckRqEquivalence(*q1, *q2);
    if (!result.ok()) return Fail(result.status().ToString());
    std::printf("verdict: %s (forward: %s/%s, backward: %s/%s)\n",
                EquivalenceVerdictName(result->verdict),
                CertaintyName(result->forward.certainty),
                result->forward.method.c_str(),
                CertaintyName(result->backward.certainty),
                result->backward.method.c_str());
    const auto& refuted =
        result->forward.certainty == Certainty::kRefuted
            ? result->forward
            : result->backward;
    if (refuted.counterexample.has_value()) {
      std::printf("separating database:\n%s",
                  refuted.counterexample->ToString().c_str());
    }
    return result->verdict == EquivalenceVerdict::kEquivalent      ? 0
           : result->verdict == EquivalenceVerdict::kNotEquivalent ? 1
                                                                   : 2;
  }
  if (cls == "datalog") {
    auto q1 = ParseDatalog(t1);
    auto q2 = ParseDatalog(t2);
    if (!q1.ok()) return Fail(q1.status().ToString());
    if (!q2.ok()) return Fail(q2.status().ToString());
    auto result = CheckDatalogContainment(*q1, *q2);
    if (!result.ok()) return Fail(result.status().ToString());
    return Report(result->certainty, result->method,
                  result->counterexample);
  }
  return Fail("unknown class: " + cls);
}

}  // namespace

int main(int argc, char** argv) {
  bool trace = false;
  bool profile_text = false;
  std::string profile_json;
  std::string stats_json;
  std::string chrome_trace;
  std::string flight_dump;
  std::string prometheus;
  int64_t timeout_ms = 0;
  int64_t memory_budget_mb = 0;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--trace") {
      trace = true;
    } else if (arg == "--profile") {
      profile_text = true;
    } else if (arg == "--profile-json" && i + 1 < argc) {
      profile_json = argv[++i];
    } else if (arg.rfind("--profile-json=", 0) == 0) {
      profile_json = arg.substr(15);
    } else if (arg == "--flight-dump" && i + 1 < argc) {
      flight_dump = argv[++i];
    } else if (arg.rfind("--flight-dump=", 0) == 0) {
      flight_dump = arg.substr(14);
    } else if (arg == "--prometheus" && i + 1 < argc) {
      prometheus = argv[++i];
    } else if (arg.rfind("--prometheus=", 0) == 0) {
      prometheus = arg.substr(13);
    } else if (arg == "--cache") {
      cache::AutomataCache::Global().SetEnabled(true);
    } else if (arg == "--jobs" && i + 1 < argc) {
      SetDefaultContainmentJobs(
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10)));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      SetDefaultContainmentJobs(
          static_cast<unsigned>(std::strtoul(arg.c_str() + 7, nullptr, 10)));
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      timeout_ms = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      timeout_ms = std::strtoll(arg.c_str() + 13, nullptr, 10);
    } else if (arg == "--memory-budget-mb" && i + 1 < argc) {
      memory_budget_mb = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg.rfind("--memory-budget-mb=", 0) == 0) {
      memory_budget_mb = std::strtoll(arg.c_str() + 19, nullptr, 10);
    } else if (arg == "--stats-json" && i + 1 < argc) {
      stats_json = argv[++i];
    } else if (arg.rfind("--stats-json=", 0) == 0) {
      stats_json = arg.substr(13);
    } else if (arg == "--chrome-trace" && i + 1 < argc) {
      chrome_trace = argv[++i];
    } else if (arg.rfind("--chrome-trace=", 0) == 0) {
      chrome_trace = arg.substr(15);
    } else {
      positional.push_back(std::move(arg));
    }
  }
  if (positional.size() != 3) {
    return Fail(
        "usage: rqcheck [--trace] [--profile] [--profile-json <path>] "
        "[--stats-json <path>] [--chrome-trace <path>] "
        "[--flight-dump <path>] [--prometheus <path>] [--cache] [--jobs N] "
        "[--timeout-ms N] [--memory-budget-mb N] "
        "<rpq|2rpq|cq|ucq|uc2rpq|rq|rq-equiv|datalog> <q1> <q2>");
  }
  // Full tracing when any flag needs span data; counters always run.
  if (trace || !stats_json.empty() || !chrome_trace.empty()) {
    obs::SetTraceMode(obs::TraceMode::kFull);
  }
  obs::InstallFlightSignalHandler();

  const std::string cls = positional[0];
  const std::string q1 = LoadArg(positional[1]);
  const std::string q2 = LoadArg(positional[2]);
  obs::SetFlightQueryLabel(cls + " " + q1 + " <= " + q2);

  obs::QueryProfile profile;
  const bool profiling = profile_text || !profile_json.empty();
  if (profiling) profile.Begin("rqcheck", cls, q1 + "  <=  " + q2);

  // The check always runs under a MemContext (budget 0 = unlimited), so
  // the per-subsystem peak-byte breakdown lands in --profile output and
  // the flight recorder's mem_peak field even without a budget. The
  // context stays installed through profile.End(), which samples it.
  MemContext mem_ctx(memory_budget_mb > 0
                         ? static_cast<uint64_t>(memory_budget_mb) * 1024 *
                               1024
                         : 0);
  ScopedMemContext scoped_mem(&mem_ctx);

  int code;
  {
    // Scope the deadline to the check itself so the stats/trace dumps
    // below never run under an expired context.
    ExecContext ctx(timeout_ms > 0 ? Deadline::AfterMillis(timeout_ms)
                                   : Deadline::Infinite());
    std::optional<ScopedExecContext> scoped;
    if (timeout_ms > 0) scoped.emplace(&ctx);
    code = RunCheck(cls, q1, q2);
  }
  // A check that failed because the byte budget latched gets the distinct
  // resource-exhausted exit code; errors for other reasons keep 3.
  // exceeded() reads the shared pot, so trips latched on batch-worker
  // mirrors count too.
  if (code == 3 && mem_ctx.exceeded()) code = 4;

  if (profiling) {
    profile.End();
    if (profile_text) std::fputs(profile.ToText().c_str(), stdout);
    if (!profile_json.empty()) {
      std::ofstream out(profile_json);
      out << profile.ToJson().Dump(2) << '\n';
      if (!out) return Fail("cannot write " + profile_json);
    }
  }
  if (trace) obs::PrintSpanTree(stderr);
  if (!stats_json.empty()) {
    Status status = obs::WriteSnapshotJsonFile(stats_json);
    if (!status.ok()) return Fail(status.ToString());
  }
  if (!chrome_trace.empty()) {
    Status status = obs::WriteChromeTraceFile(chrome_trace);
    if (!status.ok()) return Fail(status.ToString());
  }
  if (!flight_dump.empty()) {
    Status status = obs::WriteFlightDump(flight_dump);
    if (!status.ok()) return Fail(status.ToString());
  }
  if (!prometheus.empty()) {
    Status status = obs::WritePrometheusTextFile(prometheus);
    if (!status.ok()) return Fail(status.ToString());
  }
  return code;
}

// Graph-database workloads on a synthetic social network (the kind of
// "more flexible than relational" data the paper's §1 motivates): 2RPQ
// navigation with inverse edges, conjunctive path queries, and a regular
// query whose transitive closure ranges over a non-path pattern.
//
//   ./build/examples/social_network
#include <cstdio>

#include "crpq/crpq.h"
#include "graph/generators.h"
#include "pathquery/path_query.h"
#include "rq/eval.h"
#include "rq/parser.h"

using namespace rq;  // examples only

int main() {
  GraphDb net = SocialNetwork(/*num_people=*/200, /*num_groups=*/12,
                              /*num_posts=*/150, /*seed=*/20260705);
  std::printf("social network: %zu nodes, %zu edges\n", net.num_nodes(),
              net.num_edges());

  // --- 2RPQ: collaborators = people who liked a common post. ------------
  // likes · likes⁻ walks forward to a post, then backward to another liker.
  PathQuery co_likers =
      ParsePathQuery("likes likes-", &net.alphabet()).value();
  auto pairs = EvalPathQuery(net, *co_likers.regex);
  size_t distinct = 0;
  for (const auto& [x, y] : pairs) {
    if (x < y) ++distinct;
  }
  std::printf("2RPQ likes·likes-: %zu unordered co-liker pairs\n",
              distinct);

  // --- 2RPQ with unbounded navigation: influence cones. -----------------
  PathQuery influence =
      ParsePathQuery("knows- knows- knows-*", &net.alphabet()).value();
  Nfa nfa = influence.regex->ToNfa(
      static_cast<uint32_t>(net.alphabet().num_symbols()));
  std::vector<NodeId> cone = EvalPathQueryFrom(net, nfa, 0);
  std::printf("2RPQ influence cone of person 0 (>=2 reverse-knows hops): "
              "%zu people\n",
              cone.size());

  // --- UC2RPQ: friend-of-friend in a shared group, or direct friends. ---
  auto recommendation = ParseUc2Rpq(
      "q(x, y) :- (knows knows)(x, y), (member)(x, g), (member)(y, g)\n"
      "q(x, y) :- (knows)(x, y)\n",
      &net.alphabet());
  if (!recommendation.ok()) {
    std::printf("parse error: %s\n",
                recommendation.status().ToString().c_str());
    return 1;
  }
  Relation recs = EvalUc2Rpq(net, *recommendation).value();
  std::printf("UC2RPQ friend recommendations: %zu candidate pairs\n",
              recs.size());

  // --- RQ: closure over a conjunctive "mutual endorsement" pattern:
  // x and y know each other (in some direction chain of length 2 via a
  // common group): pattern(x,y) = member(x,g) ∧ member(y,g) ∧ knows(x,y);
  // tc(pattern) finds endorsement chains through groups. -----------------
  RqQuery chains = ParseRq(
      "q(x, y) := tc[x,y]( exists[g]( member(x, g) & member(y, g) & "
      "knows(x, y) ) )")
                       .value();
  Database db = GraphToDatabase(net);
  Relation chain_pairs = EvalRqQuery(db, chains).value();
  std::printf("RQ in-group endorsement chains: %zu pairs\n",
              chain_pairs.size());

  // --- Show a few concrete answers. --------------------------------------
  std::printf("sample recommendations:\n");
  size_t shown = 0;
  for (const Tuple& t : recs.SortedTuples()) {
    if (t[0] == t[1]) continue;
    std::printf("  %s -> %s\n",
                net.NodeName(static_cast<NodeId>(t[0])).c_str(),
                net.NodeName(static_cast<NodeId>(t[1])).c_str());
    if (++shown == 5) break;
  }
  return 0;
}

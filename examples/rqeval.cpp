// rqeval — evaluate a query of any class over a graph database file.
//
//   rqeval <graph-file> <class> <query>
//     graph-file : edge list, one "src label dst" per line ('#' comments)
//     class      : path | crpq | rq | datalog
//     query      : query text, or @path to read from a file
//
// Examples:
//   rqeval net.graph path 'knows+'
//   rqeval net.graph crpq 'q(x,y) :- (knows+)(x,y), (member)(x,g)'
//   rqeval net.graph rq 'q(x,y) := tc[x,y](knows(x,y))'
//   rqeval net.graph datalog @reach.dl
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "crpq/crpq.h"
#include "datalog/eval.h"
#include "graph/graph_db.h"
#include "pathquery/path_query.h"
#include "rq/eval.h"
#include "rq/parser.h"

using namespace rq;  // examples only

namespace {

std::string LoadArg(const std::string& arg) {
  if (arg.empty() || arg[0] != '@') return arg;
  std::ifstream in(arg.substr(1));
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "rqeval: %s\n", message.c_str());
  return 2;
}

void PrintTuples(const GraphDb& db, const Relation& relation) {
  for (const Tuple& t : relation.SortedTuples()) {
    for (size_t i = 0; i < t.size(); ++i) {
      std::printf(i == 0 ? "%s" : "\t%s",
                  db.NodeName(static_cast<NodeId>(t[i])).c_str());
    }
    std::printf("\n");
  }
  std::printf("-- %zu tuples\n", relation.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    return Fail("usage: rqeval <graph-file> <path|crpq|rq|datalog> <query>");
  }
  std::ifstream in(argv[1]);
  if (!in) return Fail(std::string("cannot open ") + argv[1]);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto graph = GraphDb::FromText(buffer.str());
  if (!graph.ok()) return Fail(graph.status().ToString());

  std::string cls = argv[2];
  std::string text = LoadArg(argv[3]);

  if (cls == "path") {
    auto q = ParsePathQuery(text, &graph->alphabet());
    if (!q.ok()) return Fail(q.status().ToString());
    Relation out(2);
    for (const auto& [x, y] : EvalPathQuery(*graph, *q->regex)) {
      out.Insert({x, y});
    }
    PrintTuples(*graph, out);
    return 0;
  }
  if (cls == "crpq") {
    auto q = ParseUc2Rpq(text, &graph->alphabet());
    if (!q.ok()) return Fail(q.status().ToString());
    auto out = EvalUc2Rpq(*graph, *q);
    if (!out.ok()) return Fail(out.status().ToString());
    PrintTuples(*graph, *out);
    return 0;
  }
  if (cls == "rq") {
    auto q = ParseRq(text);
    if (!q.ok()) return Fail(q.status().ToString());
    auto out = EvalRqQuery(GraphToDatabase(*graph), *q);
    if (!out.ok()) return Fail(out.status().ToString());
    PrintTuples(*graph, *out);
    return 0;
  }
  if (cls == "datalog") {
    auto q = ParseDatalog(text);
    if (!q.ok()) return Fail(q.status().ToString());
    auto out = EvalDatalogGoal(*q, GraphToDatabase(*graph));
    if (!out.ok()) return Fail(out.status().ToString());
    PrintTuples(*graph, *out);
    return 0;
  }
  return Fail("unknown class: " + cls);
}

// rqeval — evaluate a query of any class over a graph database file.
//
//   rqeval [--trace] [--profile] [--profile-json <path>]
//          [--stats-json <path>] [--chrome-trace <path>]
//          [--flight-dump <path>] [--prometheus <path>]
//          [--cache] [--jobs N] [--timeout-ms N] [--memory-budget-mb N]
//          <graph-file> <class> <query>
//     graph-file : edge list, one "src label dst" per line ('#' comments)
//     class      : path | crpq | rq | datalog
//     query      : query text, or @path to read from a file
//     --trace             print the span tree of the evaluation (plus
//                         non-zero counters/gauges/histograms) to stderr
//     --profile           print an EXPLAIN ANALYZE-style per-query report
//                         (counter deltas, windowed distributions, gauge
//                         levels) after the answers
//     --profile-json <path> write the same report as JSON (schema
//                         "rq-profile/1") to <path>
//     --stats-json <path> write the observability snapshot (counters,
//                         gauges, histograms, spans; schema "rq-obs/2")
//                         to <path>
//     --chrome-trace <path> write the spans as Chrome trace-event JSON
//                         (Perfetto / chrome://tracing)
//     --flight-dump <path> write the flight recorder's ring of completed
//                         queries plus the slow-query log to <path>
//                         ("-" = stderr)
//     --prometheus <path> write every counter, gauge, and histogram in
//                         Prometheus text exposition format to <path>
//     --cache             enable the content-addressed automata/verdict
//                         cache (docs/CACHING.md)
//     --jobs N            worker threads for evaluation: path and crpq
//                         queries fan their multi-source product-BFS over
//                         N workers sharing one immutable graph snapshot
//                         (shared flag surface with rqcheck, where the
//                         same knob drives batched containment checks)
//     --timeout-ms N      wall-clock budget for the evaluation; expiry
//                         fails with DeadlineExceeded (exit 2) instead of
//                         hanging (docs/ROBUSTNESS.md)
//     --memory-budget-mb N byte budget for the evaluation (common/mem.h):
//                         crossing it fails with ResourceExhausted
//                         (exit 4, not a crash) through the same polling
//                         sites as --timeout-ms, and bumps the
//                         mem.budget_exceeded counter. The evaluation
//                         always runs under a MemContext, so --profile
//                         reports a per-subsystem peak-byte breakdown
//                         either way
//
// Examples:
//   rqeval net.graph path 'knows+'
//   rqeval net.graph crpq 'q(x,y) :- (knows+)(x,y), (member)(x,g)'
//   rqeval net.graph rq 'q(x,y) := tc[x,y](knows(x,y))'
//   rqeval net.graph datalog @reach.dl
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include <vector>

#include "cache/automata_cache.h"
#include "common/deadline.h"
#include "common/mem.h"
#include "common/parallel.h"
#include "crpq/crpq.h"
#include "datalog/eval.h"
#include "graph/graph_db.h"
#include "obs/chrome_trace.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/profile.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "pathquery/path_query.h"
#include "rq/eval.h"
#include "rq/parser.h"

using namespace rq;  // examples only

namespace {

std::string LoadArg(const std::string& arg) {
  if (arg.empty() || arg[0] != '@') return arg;
  std::ifstream in(arg.substr(1));
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "rqeval: %s\n", message.c_str());
  return 2;
}

void PrintTuples(const GraphDb& db, const Relation& relation) {
  for (const Tuple& t : relation.SortedTuples()) {
    for (size_t i = 0; i < t.size(); ++i) {
      std::printf(i == 0 ? "%s" : "\t%s",
                  db.NodeName(static_cast<NodeId>(t[i])).c_str());
    }
    std::printf("\n");
  }
  std::printf("-- %zu tuples\n", relation.size());
}

int RunEval(const std::string& graph_file, const std::string& cls,
            const std::string& text) {
  std::ifstream in(graph_file);
  if (!in) return Fail("cannot open " + graph_file);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto graph = GraphDb::FromText(buffer.str());
  if (!graph.ok()) return Fail(graph.status().ToString());

  if (cls == "path") {
    auto q = ParsePathQuery(text, &graph->alphabet());
    if (!q.ok()) return Fail(q.status().ToString());
    Relation out(2);
    for (const auto& [x, y] : EvalPathQuery(*graph, *q->regex)) {
      out.Insert({x, y});
    }
    // Path evaluation reports truncation through the installed context
    // rather than a Status return; surface it instead of printing a
    // silently partial answer set.
    if (Status s = CheckExecContext(); !s.ok()) return Fail(s.ToString());
    PrintTuples(*graph, out);
    return 0;
  }
  if (cls == "crpq") {
    auto q = ParseUc2Rpq(text, &graph->alphabet());
    if (!q.ok()) return Fail(q.status().ToString());
    auto out = EvalUc2Rpq(*graph, *q);
    if (!out.ok()) return Fail(out.status().ToString());
    PrintTuples(*graph, *out);
    return 0;
  }
  if (cls == "rq") {
    auto q = ParseRq(text);
    if (!q.ok()) return Fail(q.status().ToString());
    auto out = EvalRqQuery(GraphToDatabase(*graph), *q);
    if (!out.ok()) return Fail(out.status().ToString());
    PrintTuples(*graph, *out);
    return 0;
  }
  if (cls == "datalog") {
    auto q = ParseDatalog(text);
    if (!q.ok()) return Fail(q.status().ToString());
    auto out = EvalDatalogGoal(*q, GraphToDatabase(*graph));
    if (!out.ok()) return Fail(out.status().ToString());
    PrintTuples(*graph, *out);
    return 0;
  }
  return Fail("unknown class: " + cls);
}

}  // namespace

int main(int argc, char** argv) {
  bool trace = false;
  bool profile_text = false;
  std::string profile_json;
  std::string stats_json;
  std::string chrome_trace;
  std::string flight_dump;
  std::string prometheus;
  int64_t timeout_ms = 0;
  int64_t memory_budget_mb = 0;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--trace") {
      trace = true;
    } else if (arg == "--profile") {
      profile_text = true;
    } else if (arg == "--profile-json" && i + 1 < argc) {
      profile_json = argv[++i];
    } else if (arg.rfind("--profile-json=", 0) == 0) {
      profile_json = arg.substr(15);
    } else if (arg == "--flight-dump" && i + 1 < argc) {
      flight_dump = argv[++i];
    } else if (arg.rfind("--flight-dump=", 0) == 0) {
      flight_dump = arg.substr(14);
    } else if (arg == "--prometheus" && i + 1 < argc) {
      prometheus = argv[++i];
    } else if (arg.rfind("--prometheus=", 0) == 0) {
      prometheus = arg.substr(13);
    } else if (arg == "--cache") {
      cache::AutomataCache::Global().SetEnabled(true);
    } else if (arg == "--jobs" && i + 1 < argc) {
      SetDefaultParallelJobs(
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10)));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      SetDefaultParallelJobs(
          static_cast<unsigned>(std::strtoul(arg.c_str() + 7, nullptr, 10)));
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      timeout_ms = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      timeout_ms = std::strtoll(arg.c_str() + 13, nullptr, 10);
    } else if (arg == "--memory-budget-mb" && i + 1 < argc) {
      memory_budget_mb = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg.rfind("--memory-budget-mb=", 0) == 0) {
      memory_budget_mb = std::strtoll(arg.c_str() + 19, nullptr, 10);
    } else if (arg == "--stats-json" && i + 1 < argc) {
      stats_json = argv[++i];
    } else if (arg.rfind("--stats-json=", 0) == 0) {
      stats_json = arg.substr(13);
    } else if (arg == "--chrome-trace" && i + 1 < argc) {
      chrome_trace = argv[++i];
    } else if (arg.rfind("--chrome-trace=", 0) == 0) {
      chrome_trace = arg.substr(15);
    } else {
      positional.push_back(std::move(arg));
    }
  }
  if (positional.size() != 3) {
    return Fail(
        "usage: rqeval [--trace] [--profile] [--profile-json <path>] "
        "[--stats-json <path>] [--chrome-trace <path>] "
        "[--flight-dump <path>] [--prometheus <path>] [--cache] [--jobs N] "
        "[--timeout-ms N] [--memory-budget-mb N] "
        "<graph-file> <path|crpq|rq|datalog> <query>");
  }
  // Full tracing when any flag needs span data; counters always run.
  if (trace || !stats_json.empty() || !chrome_trace.empty()) {
    obs::SetTraceMode(obs::TraceMode::kFull);
  }
  obs::InstallFlightSignalHandler();

  const std::string query = LoadArg(positional[2]);
  obs::SetFlightQueryLabel(positional[1] + " " + query);

  obs::QueryProfile profile;
  const bool profiling = profile_text || !profile_json.empty();
  if (profiling) profile.Begin("rqeval", positional[1], query);

  // The evaluation always runs under a MemContext (budget 0 = unlimited)
  // so --profile reports the per-subsystem peak-byte breakdown; the
  // context stays installed through profile.End(), which samples it.
  MemContext mem_ctx(memory_budget_mb > 0
                         ? static_cast<uint64_t>(memory_budget_mb) * 1024 *
                               1024
                         : 0);
  ScopedMemContext scoped_mem(&mem_ctx);

  int code;
  {
    // Scope the deadline to the evaluation so the stats/trace dumps below
    // never run under an expired context.
    ExecContext ctx(timeout_ms > 0 ? Deadline::AfterMillis(timeout_ms)
                                   : Deadline::Infinite());
    std::optional<ScopedExecContext> scoped;
    if (timeout_ms > 0) scoped.emplace(&ctx);
    code = RunEval(positional[0], positional[1], query);
  }
  // Distinct exit code for a memory-budget failure (exceeded() reads the
  // shared pot, so trips latched on worker mirrors count too).
  if (code == 2 && mem_ctx.exceeded()) code = 4;

  if (profiling) {
    profile.End();
    if (profile_text) std::fputs(profile.ToText().c_str(), stdout);
    if (!profile_json.empty()) {
      std::ofstream out(profile_json);
      out << profile.ToJson().Dump(2) << '\n';
      if (!out) return Fail("cannot write " + profile_json);
    }
  }
  if (trace) obs::PrintSpanTree(stderr);
  if (!stats_json.empty()) {
    Status status = obs::WriteSnapshotJsonFile(stats_json);
    if (!status.ok()) return Fail(status.ToString());
  }
  if (!chrome_trace.empty()) {
    Status status = obs::WriteChromeTraceFile(chrome_trace);
    if (!status.ok()) return Fail(status.ToString());
  }
  if (!flight_dump.empty()) {
    Status status = obs::WriteFlightDump(flight_dump);
    if (!status.ok()) return Fail(status.ToString());
  }
  if (!prometheus.empty()) {
    Status status = obs::WritePrometheusTextFile(prometheus);
    if (!status.ok()) return Fail(status.ToString());
  }
  return code;
}
